//! Thread-local heap accounting for the profiler: a [`TrackingAllocator`]
//! that binaries opt into with `#[global_allocator]`, charging every
//! allocation to per-thread counters that [`crate::prof`] scopes snapshot
//! on enter/exit.
//!
//! Accounting model and caveats (see DESIGN.md §11):
//!
//! * Counters are **per thread**. A scope only sees allocations made on its
//!   own thread; work fanned out to `mri_sync::thread::scope` workers is
//!   charged to those workers' (unscoped) counters, not to the parent
//!   scope. Trajectory probes are therefore sized below the kernels'
//!   parallel thresholds.
//! * `peak_live_bytes` tracks the high-water mark of *live heap bytes
//!   allocated through this allocator on this thread* — not process RSS:
//!   no allocator slack, no stacks, no other threads.
//! * The hooks never allocate and use [`std::thread::LocalKey::try_with`],
//!   so allocations during thread teardown (TLS destructors) are safe —
//!   they simply go uncounted.
//!
//! Without the `telemetry` feature (or under loom) the allocator is a pure
//! pass-through to [`System`] and every stat reads zero.

use std::alloc::{GlobalAlloc, Layout, System};

/// Snapshot of this thread's allocation counters since thread start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes allocated (monotone).
    pub alloc_bytes: u64,
    /// Number of allocations (monotone; a realloc counts as one).
    pub alloc_count: u64,
    /// Total bytes freed (monotone).
    pub free_bytes: u64,
    /// Currently live heap bytes (`alloc_bytes - free_bytes`, saturating).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`; [`crate::prof`] scopes rewind this
    /// to measure per-scope peaks (see `begin_peak_window`).
    pub peak_live_bytes: u64,
}

#[cfg(all(feature = "telemetry", not(loom)))]
thread_local! {
    static STATS: std::cell::Cell<AllocStats> = const {
        std::cell::Cell::new(AllocStats {
            alloc_bytes: 0,
            alloc_count: 0,
            free_bytes: 0,
            live_bytes: 0,
            peak_live_bytes: 0,
        })
    };
}

/// This thread's counters. All-zero when the `telemetry` feature is off, no
/// [`TrackingAllocator`] is installed, or the thread is tearing down.
pub fn thread_stats() -> AllocStats {
    #[cfg(all(feature = "telemetry", not(loom)))]
    {
        STATS.try_with(std::cell::Cell::get).unwrap_or_default()
    }
    #[cfg(not(all(feature = "telemetry", not(loom))))]
    {
        AllocStats::default()
    }
}

/// Rewinds the peak-tracking high-water mark to the current live count so a
/// scope can measure its own peak, returning the previous mark for
/// [`end_peak_window`] to restore.
#[cfg(all(feature = "telemetry", not(loom)))]
pub(crate) fn begin_peak_window() -> u64 {
    STATS
        .try_with(|s| {
            let mut v = s.get();
            let saved = v.peak_live_bytes;
            v.peak_live_bytes = v.live_bytes;
            s.set(v);
            saved
        })
        .unwrap_or_default()
}

/// Ends a peak window: returns the peak observed since the matching
/// [`begin_peak_window`] and restores the mark to the larger of the saved
/// and observed values (so enclosing windows still see the true peak).
#[cfg(all(feature = "telemetry", not(loom)))]
pub(crate) fn end_peak_window(saved: u64) -> u64 {
    STATS
        .try_with(|s| {
            let mut v = s.get();
            let window_peak = v.peak_live_bytes;
            v.peak_live_bytes = saved.max(window_peak);
            s.set(v);
            window_peak
        })
        .unwrap_or_default()
}

#[cfg(all(feature = "telemetry", not(loom)))]
fn on_alloc(bytes: u64) {
    // `try_with` + `Cell`: no allocation, no reentrancy, safe during TLS
    // teardown (where the access simply fails and the event is dropped).
    let _ = STATS.try_with(|s| {
        let mut v = s.get();
        v.alloc_bytes += bytes;
        v.alloc_count += 1;
        v.live_bytes += bytes;
        if v.live_bytes > v.peak_live_bytes {
            v.peak_live_bytes = v.live_bytes;
        }
        s.set(v);
    });
}

#[cfg(all(feature = "telemetry", not(loom)))]
fn on_free(bytes: u64) {
    let _ = STATS.try_with(|s| {
        let mut v = s.get();
        v.free_bytes += bytes;
        // Cross-thread frees (Arc drops, channel hand-offs) can free more
        // than this thread allocated; saturate rather than wrap.
        v.live_bytes = v.live_bytes.saturating_sub(bytes);
        s.set(v);
    });
}

/// A [`System`]-delegating allocator that feeds the per-thread counters.
///
/// Install it in a binary (not the library — allocator choice belongs to
/// the final artifact) with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mri_telemetry::alloc::TrackingAllocator =
///     mri_telemetry::alloc::TrackingAllocator::new();
/// ```
#[derive(Debug, Default)]
pub struct TrackingAllocator;

impl TrackingAllocator {
    /// Const constructor for `static` installation sites.
    pub const fn new() -> Self {
        TrackingAllocator
    }
}

// SAFETY: every method delegates to `System` with the caller's exact
// arguments, so the GlobalAlloc contract (layout fidelity, pointer
// validity) is inherited unchanged; the counter hooks touch only
// thread-local `Cell`s and never allocate or unwind.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        let p = unsafe { System.alloc(layout) };
        #[cfg(all(feature = "telemetry", not(loom)))]
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    // SAFETY: see the impl-level comment — pure delegation to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        let p = unsafe { System.alloc_zeroed(layout) };
        #[cfg(all(feature = "telemetry", not(loom)))]
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    // SAFETY: see the impl-level comment — pure delegation to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller guarantees `ptr` came from
        // this allocator with this layout.
        unsafe { System.dealloc(ptr, layout) };
        #[cfg(all(feature = "telemetry", not(loom)))]
        on_free(layout.size() as u64);
    }

    // SAFETY: see the impl-level comment — pure delegation to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller guarantees `ptr`/`layout`
        // match a prior allocation and `new_size` is non-zero.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        #[cfg(all(feature = "telemetry", not(loom)))]
        if !p.is_null() {
            // Modeled as free(old) + alloc(new); counts as one allocation.
            on_free(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

#[cfg(all(test, feature = "telemetry", not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn manual_alloc_free_roundtrip_updates_counters() {
        let a = TrackingAllocator::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        let base = thread_stats();
        // SAFETY: valid non-zero layout; the pointer is freed below with
        // the same layout.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        let mid = thread_stats();
        assert_eq!(mid.alloc_bytes - base.alloc_bytes, 256);
        assert_eq!(mid.alloc_count - base.alloc_count, 1);
        assert_eq!(mid.live_bytes, base.live_bytes + 256);
        assert!(mid.peak_live_bytes >= mid.live_bytes);
        // SAFETY: `p` was allocated above with `layout`.
        unsafe { a.dealloc(p, layout) };
        let end = thread_stats();
        assert_eq!(end.free_bytes - base.free_bytes, 256);
        assert_eq!(end.live_bytes, base.live_bytes);
    }

    #[test]
    fn peak_windows_nest_and_restore() {
        let a = TrackingAllocator::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let saved = begin_peak_window();
        assert_eq!(thread_stats().peak_live_bytes, thread_stats().live_bytes);
        // SAFETY: valid non-zero layout; freed below with the same layout.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        // SAFETY: `p` was allocated above with `layout`.
        unsafe { a.dealloc(p, layout) };
        let base_live = thread_stats().live_bytes;
        let window_peak = end_peak_window(saved);
        // The window saw the transient 1 KiB spike even though it is freed.
        assert!(window_peak >= base_live + 1024);
        // The restored mark covers both the saved and the in-window peak.
        assert!(thread_stats().peak_live_bytes >= window_peak.max(saved));
    }
}
