//! Scoped spans: RAII timers that feed a histogram and (optionally) the
//! event stream.
//!
//! ```
//! let reg = mri_telemetry::Registry::new();
//! {
//!     let _step = reg.span("train.step");
//!     // ... work ...
//! } // duration recorded into histogram "train.step.ns" here
//! ```
//!
//! Spans nest: a thread-local depth is tracked so emitted `"span"` events
//! carry their nesting level. Without the `telemetry` cargo feature a span
//! takes no clock reading and the guard is an empty struct.

use crate::registry::Registry;

#[cfg(feature = "telemetry")]
use crate::histogram::{saturating_ns, Histogram};

#[cfg(feature = "telemetry")]
thread_local! {
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Current span nesting depth on this thread (0 outside any span). Always 0
/// without the `telemetry` feature.
pub fn current_depth() -> u32 {
    #[cfg(feature = "telemetry")]
    {
        DEPTH.with(|d| d.get())
    }
    #[cfg(not(feature = "telemetry"))]
    {
        0
    }
}

/// RAII guard returned by [`Registry::span`]; records on drop.
pub struct SpanGuard<'a> {
    #[cfg(feature = "telemetry")]
    active: Option<Active<'a>>,
    #[cfg(not(feature = "telemetry"))]
    _registry: std::marker::PhantomData<&'a Registry>,
}

#[cfg(feature = "telemetry")]
struct Active<'a> {
    registry: &'a Registry,
    name: String,
    hist: Histogram,
    start: std::time::Instant,
    depth: u32,
}

impl<'a> SpanGuard<'a> {
    #[cfg(feature = "telemetry")]
    pub(crate) fn enter(registry: &'a Registry, name: &str) -> Self {
        let hist = registry.histogram(&format!("{name}.ns"));
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Self {
            active: Some(Active {
                registry,
                name: name.to_string(),
                hist,
                start: std::time::Instant::now(),
                depth,
            }),
        }
    }

    #[cfg(not(feature = "telemetry"))]
    pub(crate) fn enter(_registry: &'a Registry, _name: &str) -> Self {
        Self {
            _registry: std::marker::PhantomData,
        }
    }

    /// Nesting depth this span opened at (0 = outermost). Always 0 without
    /// the `telemetry` feature.
    pub fn depth(&self) -> u32 {
        #[cfg(feature = "telemetry")]
        {
            self.active.as_ref().map_or(0, |a| a.depth)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        if let Some(active) = self.active.take() {
            let ns = saturating_ns(active.start.elapsed());
            active.hist.record(ns);
            DEPTH.with(|d| d.set(active.depth));
            if active.registry.events_enabled() {
                active.registry.emit(
                    crate::Event::new("span", active.name)
                        .int("dur_ns", ns)
                        .int("depth", u64::from(active.depth)),
                );
            }
        }
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use crate::Registry;

    #[test]
    fn span_records_duration_into_named_histogram() {
        let reg = Registry::new();
        {
            let _s = reg.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = reg.histogram("work.ns");
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 2_000_000, "slept 2ms but recorded {}ns", h.max());
    }

    #[test]
    fn nested_spans_track_depth_and_contain_inner_time() {
        let reg = Registry::new();
        assert_eq!(super::current_depth(), 0);
        {
            let outer = reg.span("outer");
            assert_eq!(outer.depth(), 0);
            assert_eq!(super::current_depth(), 1);
            {
                let inner = reg.span("inner");
                assert_eq!(inner.depth(), 1);
                assert_eq!(super::current_depth(), 2);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(super::current_depth(), 1);
        }
        assert_eq!(super::current_depth(), 0);
        let outer = reg.histogram("outer.ns");
        let inner = reg.histogram("inner.ns");
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 1);
        // The outer span strictly contains the inner one.
        assert!(outer.max() >= inner.max());
    }

    #[test]
    fn span_events_carry_depth() {
        let reg = Registry::new();
        let path =
            std::env::temp_dir().join(format!("mri-telemetry-span-{}.jsonl", std::process::id()));
        reg.open_jsonl(&path).unwrap();
        {
            let _outer = reg.span("outer");
            let _inner = reg.span("inner");
        }
        reg.close_sink().unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let recs: Vec<crate::EventRecord> = body
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // Inner drops first.
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "inner");
        assert_eq!(recs[0].ints["depth"], 1);
        assert_eq!(recs[1].name, "outer");
        assert_eq!(recs[1].ints["depth"], 0);
        std::fs::remove_file(&path).ok();
    }
}
