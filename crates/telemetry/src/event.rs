//! The JSONL event schema and a small builder for call sites.
//!
//! Every line of an event stream is one [`EventRecord`] serialized as a JSON
//! object. The schema keeps values in three typed maps (`ints`, `floats`,
//! `labels`) so integer quantities like cycle counts stay exact instead of
//! being coerced through `f64`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One line of a JSONL event stream.
///
/// Required envelope fields: `ts_ns` (nanoseconds since the owning registry
/// was created), `seq` (global emission sequence number), `kind` (event
/// family, e.g. `"span"`, `"train.step"`, `"hw.layer"`), `name` (instance
/// within the family). Payload lives in the three typed maps; empty maps are
/// serialized as `{}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    pub ts_ns: u64,
    pub seq: u64,
    pub kind: String,
    pub name: String,
    pub ints: BTreeMap<String, u64>,
    pub floats: BTreeMap<String, f64>,
    pub labels: BTreeMap<String, String>,
}

/// Builder for an event; `ts_ns` and `seq` are stamped by the registry at
/// emission time.
#[derive(Debug, Clone)]
pub struct Event {
    pub(crate) record: EventRecord,
}

impl Event {
    /// Starts an event of the given kind/name.
    pub fn new(kind: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            record: EventRecord {
                ts_ns: 0,
                seq: 0,
                kind: kind.into(),
                name: name.into(),
                ints: BTreeMap::new(),
                floats: BTreeMap::new(),
                labels: BTreeMap::new(),
            },
        }
    }

    /// Attaches an exact integer field.
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.record.ints.insert(key.to_string(), v);
        self
    }

    /// Attaches a floating-point field.
    pub fn float(mut self, key: &str, v: f64) -> Self {
        self.record.floats.insert(key.to_string(), v);
        self
    }

    /// Attaches a string label.
    pub fn label(mut self, key: &str, v: impl Into<String>) -> Self {
        self.record.labels.insert(key.to_string(), v.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trips_through_json() {
        let e = Event::new("hw.layer", "conv1")
            .int("cycles", u64::MAX)
            .int("stall_cycles", 12)
            .float("utilization", 0.875)
            .label("network", "resnet18");
        let line = serde_json::to_string(&e.record).unwrap();
        let back: EventRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, e.record);
        assert_eq!(back.ints["cycles"], u64::MAX);
        assert_eq!(back.labels["network"], "resnet18");
    }
}
