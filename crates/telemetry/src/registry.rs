//! The metric registry: named handles, the JSONL event sink and sampling.
//!
//! Lock discipline: named lookups take a `parking_lot` read lock on a
//! `BTreeMap` once per *handle creation*; call sites are expected to cache
//! the returned handle so steady-state updates are pure atomics. The event
//! sink sits behind a `Mutex`, but emission first consults an `AtomicBool`
//! and the sampling stride, so a closed or down-sampled sink costs a couple
//! of relaxed loads.

use crate::event::Event;
use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::span::SpanGuard;
use crate::summary::Summary;
use mri_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use mri_sync::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct JsonlSink {
    writer: BufWriter<File>,
    path: PathBuf,
}

/// RAII flush guard returned by [`Registry::open_jsonl_guarded`].
///
/// Dropping the guard flushes the sink's buffered lines to disk — including
/// during panic unwinding, so a bench or test that dies mid-run still leaves
/// its emitted events on disk. Dropping does *not* close the sink; call
/// [`Registry::close_sink`] on the success path for the final
/// flush-and-close (which also surfaces write errors the guard must
/// swallow).
#[must_use = "bind the guard to a named local; dropping it immediately flushes nothing useful"]
pub struct SinkGuard<'a> {
    registry: &'a Registry,
}

impl Drop for SinkGuard<'_> {
    fn drop(&mut self) {
        // Errors cannot propagate out of drop (and panicking here would
        // abort an unwind in progress); `close_sink` reports them instead.
        let _ = self.registry.flush();
    }
}

/// A collection of named counters, gauges and histograms plus an optional
/// JSONL event sink.
///
/// Most code uses the process-wide [`crate::global`] registry; tests and
/// benchmarks that need isolation can create their own with
/// [`Registry::new`].
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    sink: Mutex<Option<JsonlSink>>,
    sink_open: AtomicBool,
    /// Emit every `stride`-th event; `0` disables emission entirely.
    sampling: AtomicU64,
    seq: AtomicU64,
    epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry with no sink and a sampling stride of 1.
    pub fn new() -> Self {
        Self {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            sink: Mutex::new(None),
            sink_open: AtomicBool::new(false),
            sampling: AtomicU64::new(1),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Returns the counter registered under `name`, creating it if needed.
    /// Cache the handle; lookups take a read lock.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Binds an *existing* counter handle under `name`, so external totals
    /// (e.g. `ResolutionControl`'s) and the registry read the same atomic.
    /// A previous binding under the same name is replaced.
    pub fn register_counter(&self, name: &str, handle: &Counter) {
        self.counters
            .write()
            .insert(name.to_string(), handle.clone());
    }

    /// Returns the gauge registered under `name`, creating it if needed.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Opens a timed span; its duration is recorded into the histogram
    /// `"{name}.ns"` (and emitted as a `"span"` event when the sink is open)
    /// when the guard drops. A no-op without the `telemetry` feature.
    pub fn span<'a>(&'a self, name: &str) -> SpanGuard<'a> {
        SpanGuard::enter(self, name)
    }

    /// Nanoseconds since this registry was created.
    pub fn elapsed_ns(&self) -> u64 {
        crate::histogram::saturating_ns(self.epoch.elapsed())
    }

    /// Sets the event sampling stride: emit every `stride`-th event, `0`
    /// disables event emission (metrics still accumulate).
    pub fn set_sampling(&self, stride: u64) {
        // ordering: standalone configuration knob; emitters may observe the
        // old stride for a few events, which sampling tolerates by design.
        self.sampling.store(stride, Ordering::Relaxed);
    }

    /// Current sampling stride.
    pub fn sampling(&self) -> u64 {
        // ordering: see `set_sampling`.
        self.sampling.load(Ordering::Relaxed)
    }

    /// True when emitted events can reach a sink: the `telemetry` feature is
    /// compiled in, a JSONL sink is open and sampling is non-zero. Call sites
    /// use this to skip building event payloads; with the feature off it is
    /// a compile-time `false`, so guarded code folds away.
    #[inline]
    pub fn events_enabled(&self) -> bool {
        if cfg!(feature = "telemetry") {
            // ordering: `sink_open` is only a fast-path hint — `emit`
            // re-checks the sink under its mutex, which provides the real
            // happens-before edge for the `JsonlSink` contents.
            self.sink_open.load(Ordering::Relaxed) && self.sampling() != 0
        } else {
            false
        }
    }

    /// Opens (or replaces) the JSONL event sink at `path`, creating parent
    /// directories. Resets the emission sequence number.
    pub fn open_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        let mut guard = self.sink.lock();
        if let Some(old) = guard.as_mut() {
            old.writer.flush()?;
        }
        *guard = Some(JsonlSink {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
        });
        // ordering: both are hints/counters — the sink itself was published
        // under the mutex above, which emitters re-acquire before writing.
        self.seq.store(0, Ordering::Relaxed);
        self.sink_open.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Like [`Registry::open_jsonl`], but returns a [`SinkGuard`] that
    /// flushes the sink when dropped — including during a panic — so
    /// buffered event lines survive a harness dying mid-run.
    pub fn open_jsonl_guarded(&self, path: impl AsRef<Path>) -> io::Result<SinkGuard<'_>> {
        self.open_jsonl(path)?;
        Ok(SinkGuard { registry: self })
    }

    /// Flushes the sink, if open.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(sink) = self.sink.lock().as_mut() {
            sink.writer.flush()?;
        }
        Ok(())
    }

    /// Flushes and closes the sink, returning the path it was writing to.
    pub fn close_sink(&self) -> io::Result<Option<PathBuf>> {
        // ordering: hint only; racing emitters that still see `true` find
        // `None` under the mutex below and write nothing.
        self.sink_open.store(false, Ordering::Relaxed);
        let mut guard = self.sink.lock();
        match guard.take() {
            Some(mut sink) => {
                sink.writer.flush()?;
                Ok(Some(sink.path))
            }
            None => Ok(None),
        }
    }

    /// Emits an event to the sink, subject to the sampling stride. Returns
    /// `true` if a line was written. Write errors are swallowed here (the
    /// hot path must not panic); they surface on [`Registry::flush`] /
    /// [`Registry::close_sink`].
    pub fn emit(&self, event: Event) -> bool {
        if !self.events_enabled() {
            return false;
        }
        // ordering: sequence numbers only need to be unique/exact, which the
        // RMW guarantees; emission order is fixed by the sink mutex below.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let stride = self.sampling();
        if stride == 0 || !seq.is_multiple_of(stride) {
            return false;
        }
        let mut record = event.record;
        record.ts_ns = self.elapsed_ns();
        record.seq = seq;
        let Ok(line) = serde_json::to_string(&record) else {
            return false;
        };
        let mut guard = self.sink.lock();
        match guard.as_mut() {
            Some(sink) => writeln!(sink.writer, "{line}").is_ok(),
            None => false,
        }
    }

    /// Snapshot of every registered metric.
    pub fn summary(&self) -> Summary {
        Summary {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .filter(|(_, v)| v.count() > 0)
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Resets every counter and forgets gauges/histograms. Intended for
    /// benchmark harnesses that reuse one registry across phases.
    pub fn reset_metrics(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRecord;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mri-telemetry-{}-{}.jsonl",
            tag,
            std::process::id()
        ))
    }

    #[test]
    fn named_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("x").get(), 7);
        assert!(a.same_cell(&b));
    }

    #[test]
    fn register_counter_binds_external_handle() {
        let reg = Registry::new();
        let external = Counter::new();
        external.add(10);
        reg.register_counter("control.term_pairs", &external);
        external.add(5);
        assert_eq!(reg.counter("control.term_pairs").get(), 15);
        assert_eq!(reg.summary().counters["control.term_pairs"], 15);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn jsonl_sink_writes_schema_valid_lines() {
        let reg = Registry::new();
        let path = temp_path("sink");
        reg.open_jsonl(&path).unwrap();
        assert!(reg.events_enabled());
        for i in 0..5u64 {
            let wrote = reg.emit(Event::new("test", "tick").int("i", i));
            assert!(wrote);
        }
        reg.close_sink().unwrap();
        assert!(!reg.events_enabled());
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 5);
        let mut last_seq = None;
        for line in lines {
            let rec: EventRecord = serde_json::from_str(line).unwrap();
            assert_eq!(rec.kind, "test");
            assert_eq!(rec.name, "tick");
            if let Some(prev) = last_seq {
                assert!(rec.seq > prev);
            }
            last_seq = Some(rec.seq);
        }
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn sampling_stride_downsamples_and_zero_disables() {
        let reg = Registry::new();
        let path = temp_path("sampling");
        reg.open_jsonl(&path).unwrap();
        reg.set_sampling(3);
        let wrote: usize = (0..9)
            .map(|i| reg.emit(Event::new("test", "t").int("i", i)) as usize)
            .sum();
        assert_eq!(wrote, 3); // seq 0, 3, 6
        reg.set_sampling(0);
        assert!(!reg.events_enabled());
        assert!(!reg.emit(Event::new("test", "t")));
        reg.close_sink().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn sink_guard_flushes_buffered_events_on_panic() {
        let reg = Registry::new();
        let path = temp_path("panic-guard");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _sink = reg.open_jsonl_guarded(&path).unwrap();
            assert!(reg.emit(Event::new("test", "before-panic").int("i", 1)));
            panic!("harness died mid-run");
        }));
        assert!(result.is_err());
        // The guard's drop ran during unwinding and flushed the BufWriter:
        // the emitted line reached disk even though the sink never closed.
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(
            body.contains("before-panic"),
            "buffered line lost: {body:?}"
        );
        reg.close_sink().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn emit_without_sink_is_a_cheap_no_op() {
        let reg = Registry::new();
        assert!(!reg.events_enabled());
        assert!(!reg.emit(Event::new("test", "t")));
    }

    #[test]
    fn summary_skips_empty_histograms() {
        let reg = Registry::new();
        reg.histogram("empty");
        reg.histogram("full").record(9);
        reg.gauge("g").set(2.5);
        let s = reg.summary();
        assert!(!s.histograms.contains_key("empty"));
        assert_eq!(s.histograms["full"].count, 1);
        assert_eq!(s.gauges["g"], 2.5);
    }
}
