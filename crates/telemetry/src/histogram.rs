//! Log₂-bucketed `u64` histograms for latency / size distributions.
//!
//! Values land in 65 power-of-two buckets: bucket 0 holds the value `0`,
//! bucket `i` (1..=64) holds `[2^(i-1), 2^i - 1]` (bucket 64's upper bound
//! saturates at `u64::MAX`). Recording is a handful of relaxed atomic ops,
//! so histograms are safe to touch from hot paths. Percentile queries find
//! the bucket containing the requested rank and interpolate linearly inside
//! it (observations assumed uniform within a bucket), clamped to the exact
//! observed `[min, max]`; the result is monotone in `p` and off by at most
//! one bucket width.

use mri_sync::atomic::{AtomicU64, Ordering};
use mri_sync::Arc;
use serde::{Deserialize, Serialize};

const BUCKETS: usize = 65;

#[derive(Debug)]
struct Inner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Wrapping sum of recorded values (documented: mean is unreliable once
    /// the sum exceeds `u64::MAX`, which takes ~584 years of nanoseconds).
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A clonable handle to a shared log₂ histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<Inner>,
}

/// Bucket index for a value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Largest value that lands in bucket `i`.
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Smallest value that lands in bucket `i`.
fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let i = bucket_index(v);
        // ordering: the five cells are deliberately not updated atomically
        // as a group — readers take a snapshot-free view and `percentile`
        // already tolerates `count` running ahead of the bucket array, so
        // each RMW only needs to be individually exact.
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.min.fetch_min(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the elapsed nanoseconds of a [`crate::maybe_now`] timestamp.
    ///
    /// `None` (telemetry feature disabled, or this call site lost the
    /// sampling draw) records nothing.
    #[inline]
    pub fn record_elapsed_ns(&self, start: Option<std::time::Instant>) {
        if let Some(start) = start {
            self.record(saturating_ns(start.elapsed()));
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        // ordering: monitoring read; staleness is acceptable.
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Wrapping sum of recorded values.
    pub fn sum(&self) -> u64 {
        // ordering: monitoring read; staleness is acceptable.
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            // ordering: monitoring read; staleness is acceptable.
            self.inner.min.load(Ordering::Relaxed)
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        // ordering: monitoring read; staleness is acceptable.
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Estimate of the `p`-th percentile observation (`p` in 0..=100; 0 when
    /// empty): linear interpolation within the bucket holding the requested
    /// rank, clamped to the exact observed `[min, max]`.
    ///
    /// Monotone in `p`; a single-sample histogram reports the sample exactly
    /// at every percentile. Concurrent writers make the answer approximate in
    /// the usual snapshot-free sense.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().clamp(1.0, count as f64) as u64;
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            // ordering: snapshot-free scan; the fallback below covers racing
            // writers that leave `count` ahead of the bucket array.
            let in_bucket = self.inner.buckets[i].load(Ordering::Relaxed);
            seen += in_bucket;
            if seen >= rank {
                // Rank position among this bucket's own observations, assumed
                // uniformly spread over [lo, hi].
                let lo = bucket_lower_bound(i);
                let hi = bucket_upper_bound(i);
                let pos = (rank - (seen - in_bucket)) as f64 / in_bucket as f64;
                let est = (lo as f64 + (hi - lo) as f64 * pos) as u64;
                let (mn, mx) = (self.min(), self.max());
                // Racing writers can leave min/max momentarily inconsistent
                // with the bucket array; skip the clamp rather than panic.
                return if mn <= mx { est.clamp(mn, mx) } else { est };
            }
        }
        // Racing writers may leave `count` ahead of the bucket array; fall
        // back to the exact max.
        self.max()
    }

    /// Snapshot of the standard summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            min: self.min(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            max: self.max(),
        }
    }
}

/// Serializable summary statistics for one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub min: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// Duration → nanoseconds, saturating at `u64::MAX`.
pub(crate) fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(9), 511);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn extremes_zero_and_u64_max() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // rank(50%) = 1 → bucket 0; rank(99%) = 2 → bucket 64.
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(99.0), u64::MAX);
    }

    #[test]
    fn percentiles_are_monotone_and_interpolated() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Rank 500 lands in bucket 9 (256..=511) at position 245 of its 256
        // observations; interpolation recovers the true median instead of the
        // bucket bound 511.
        assert_eq!(h.percentile(50.0), 500);
        let ps: Vec<u64> = [0.0, 10.0, 50.0, 90.0, 99.0, 100.0]
            .iter()
            .map(|&p| h.percentile(p))
            .collect();
        for w in ps.windows(2) {
            assert!(w[0] <= w[1], "percentiles must be monotone: {ps:?}");
        }
        assert!(h.percentile(100.0) >= h.max());
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let h = Histogram::new();
        h.record(100);
        // The min/max clamp collapses every percentile of a one-sample
        // histogram onto the sample itself, not its bucket's bounds (64/127).
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 100, "p{p}");
        }
        let s = h.summary();
        assert_eq!((s.min, s.p50, s.p99, s.max), (100, 100, 100, 100));
    }

    #[test]
    fn interpolation_stays_within_bucket_and_range() {
        let h = Histogram::new();
        // 10 observations spread over bucket 7 (64..=127).
        for v in [64u64, 70, 80, 90, 100, 105, 110, 115, 120, 127] {
            h.record(v);
        }
        for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
            let got = h.percentile(p);
            assert!((64..=127).contains(&got), "p{p} = {got} escaped bucket 7");
        }
        assert_eq!(h.percentile(100.0), 127);
        assert_eq!(h.percentile(0.0), h.percentile(1.0));
    }

    #[test]
    fn empty_summary_is_all_zeros() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!((s.min, s.p50, s.p90, s.p99, s.max), (0, 0, 0, 0, 0));
    }

    #[test]
    fn concurrent_records_preserve_count() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 5_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 20_000);
        let s = h.summary();
        assert_eq!(s.count, 20_000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert_eq!(s.max, 19_999);
    }
}
