//! `mri-telemetry`: a lock-cheap tracing + metrics layer for the workspace.
//!
//! The design splits observability into two tiers:
//!
//! * **Metrics** — [`Counter`], [`Gauge`], [`Histogram`] — are clonable
//!   handles over shared atomics. They are *always* functional, independent
//!   of the cargo feature, because workspace accounting such as
//!   `ResolutionControl`'s term-pair / value-MAC totals is built on them.
//!   Steady-state updates are single relaxed atomic operations; the
//!   [`Registry`] lock is only touched when a handle is first created.
//!
//! * **Tracing** — [`Registry::span`] timers and the JSONL event stream —
//!   is gated behind the `telemetry` cargo feature (on by default) plus a
//!   runtime sampling stride. With the feature off, spans take no clock
//!   readings, [`Registry::events_enabled`] is a compile-time `false`, and
//!   guarded call sites fold away.
//!
//! A third tier, **profiling** — the [`prof`] span-tree profiler plus the
//! [`alloc`] tracking allocator — attributes wall time and heap traffic to
//! a hierarchy of [`prof_scope!`] scopes (see DESIGN.md §11). Like tracing
//! it compiles to nothing without the `telemetry` feature.
//!
//! Artifacts land under `results/telemetry/` by convention:
//! `events.jsonl` (one [`EventRecord`] per line) and `summary.json` /
//! `summary.txt` (a [`Summary`] snapshot).
//!
//! ```
//! use mri_telemetry as tele;
//!
//! let steps = tele::counter("train.steps");
//! {
//!     let _span = tele::span("train.step");
//!     steps.inc();
//! }
//! let summary = tele::global().summary();
//! assert!(summary.counters["train.steps"] >= 1);
//! ```

pub mod alloc;
mod event;
mod histogram;
mod metrics;
pub mod prof;
mod registry;
mod span;
mod summary;

pub use alloc::{AllocStats, TrackingAllocator};
pub use event::{Event, EventRecord};
pub use histogram::{Histogram, HistogramSummary};
pub use metrics::{Counter, Gauge};
pub use prof::{Profile, ProfileNode};
pub use registry::{Registry, SinkGuard};
pub use span::{current_depth, SpanGuard};
pub use summary::Summary;

// lint: allow(raw-sync) — process-wide singleton: `static` initialisers
// must be const, and loom's cells are not; loom models build their own
// `Registry` instead of going through `global()`.
use std::sync::OnceLock;

// lint: allow(raw-sync) — see the `use` above.
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Created on first use.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Counter registered under `name` in the global registry. Cache the handle
/// in hot code.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Gauge registered under `name` in the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Histogram registered under `name` in the global registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Opens a span against the global registry.
pub fn span(name: &str) -> SpanGuard<'static> {
    global().span(name)
}

/// Emits an event to the global registry's sink (subject to sampling).
pub fn emit(event: Event) -> bool {
    global().emit(event)
}

/// Samples the worker pool's process-global stats into the `pool.lanes` and
/// `pool.jobs` gauges of the global registry. `mri-sync` cannot depend on
/// this crate (it sits below it), so the binding lives here; call before
/// snapshotting a [`Summary`] to capture current pool activity.
#[cfg(not(loom))]
pub fn sample_pool_stats() {
    gauge("pool.lanes").set(mri_sync::pool::lanes() as f64);
    gauge("pool.jobs").set(mri_sync::pool::global_jobs_run() as f64);
}

/// `Some(Instant::now())` when the `telemetry` feature is compiled in,
/// `None` otherwise — pair with [`Histogram::record_elapsed_ns`] so manual
/// timing sites cost nothing in untraced builds.
#[inline]
pub fn maybe_now() -> Option<std::time::Instant> {
    if cfg!(feature = "telemetry") {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_is_shared() {
        let c = super::counter("lib.test.global");
        c.add(2);
        assert_eq!(super::global().counter("lib.test.global").get(), 2);
    }

    #[test]
    fn maybe_now_matches_feature() {
        assert_eq!(super::maybe_now().is_some(), cfg!(feature = "telemetry"));
    }
}
