//! # mri-tensor
//!
//! A small, dependency-light dense tensor library used as the numerical
//! substrate for the multi-resolution inference reproduction.
//!
//! The library provides a row-major, contiguous `f32` [`Tensor`] with the
//! operations a CNN/LSTM training stack needs:
//!
//! * element-wise arithmetic and broadcasting along leading/trailing axes,
//! * blocked, multi-threaded matrix multiplication ([`ops::matmul`]),
//! * `im2col`-based 2-D convolution together with its data/weight gradients,
//! * max/average pooling with backward passes,
//! * reductions (sum, mean, argmax), softmax and log-softmax,
//! * random initialisation (uniform, normal via Box–Muller, Kaiming/Xavier).
//!
//! # Examples
//!
//! ```
//! use mri_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = mri_tensor::ops::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]
// Numeric kernels index with explicit loop variables on purpose: the
// row/column arithmetic is the algorithm, and iterator chains obscure it.
#![allow(clippy::needless_range_loop)]

mod shape;
mod tensor;

pub mod conv;
pub mod init;
pub mod ops;
pub mod pool;
pub mod reduce;

pub use shape::Shape;
pub use tensor::Tensor;

/// Asserts that two `f32` slices are element-wise close.
///
/// Intended for tests; panics with a helpful message on mismatch.
///
/// # Panics
///
/// Panics if the slices differ in length or any pair of elements differs by
/// more than `tol`.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "element {i} differs: {x} vs {y} (tol {tol})"
        );
    }
}
