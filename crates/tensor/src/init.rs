//! Random tensor initialisation.
//!
//! Normal variates are generated with the Box–Muller transform on top of the
//! `rand` uniform generator, so no extra distribution crate is needed.

use crate::Tensor;
use rand::Rng;

/// Draws one standard-normal sample via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Tensor of i.i.d. `N(mean, std²)` samples.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Tensor {
    let len: usize = dims.iter().product();
    let data = (0..len)
        .map(|_| mean + std * standard_normal(rng))
        .collect();
    Tensor::from_vec(data, dims)
}

/// Tensor of i.i.d. `U[lo, hi)` samples.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo <= hi, "uniform bounds out of order");
    let len: usize = dims.iter().product();
    let data = (0..len)
        .map(|_| lo + (hi - lo) * rng.random::<f32>())
        .collect();
    Tensor::from_vec(data, dims)
}

/// Kaiming (He) normal initialisation for a weight with `fan_in` inputs.
///
/// `std = sqrt(2 / fan_in)`, appropriate for ReLU networks.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_normal<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    normal(rng, dims, 0.0, (2.0 / fan_in as f32).sqrt())
}

/// Xavier/Glorot uniform initialisation.
///
/// Samples `U[-a, a]` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan sum must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, dims, -a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(&mut rng, &[10_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(7);
        let wide = kaiming_normal(&mut rng, &[4000], 1000);
        let narrow = kaiming_normal(&mut rng, &[4000], 10);
        assert!(wide.norm_sq() < narrow.norm_sq());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = normal(&mut StdRng::seed_from_u64(42), &[16], 0.0, 1.0);
        let b = normal(&mut StdRng::seed_from_u64(42), &[16], 0.0, 1.0);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(&mut rng, &[1000], 30, 30);
        let a = (6.0f32 / 60.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a));
    }
}
