//! Matrix multiplication and related linear-algebra kernels.

use crate::Tensor;

/// Minimum number of output rows per worker thread before a GEMM
/// parallelises across threads.
const PAR_ROWS_PER_THREAD: usize = 16;

/// Shared row-split policy for the three GEMM kernels: `Some(rows_per)`
/// when splitting `m` output rows over scoped threads is worth it — every
/// worker gets a meaningful chunk and the multiply count (`mults`)
/// amortises thread startup. `None` means run the serial kernel.
fn row_split(m: usize, mults: usize) -> Option<usize> {
    let threads = available_threads();
    if m >= threads * PAR_ROWS_PER_THREAD && threads > 1 && mults > 1 << 16 {
        Some(m.div_ceil(threads))
    } else {
        None
    }
}

/// Multiplies two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
///
/// The kernel is a cache-blocked triple loop (ikj order) and splits the
/// output rows over scoped threads (`mri_sync::thread::scope`) when the
/// problem is large enough to amortise thread startup.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use mri_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(ops::matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = mri_telemetry::prof_scope!("tensor.matmul");
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    if let Some(rows_per) = row_split(m, m * n * k) {
        let a_data = a.data();
        let b_data = b.data();
        // Worker panics propagate out of `scope` after all threads joined.
        mri_sync::thread::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = t * rows_per;
                scope.spawn(move || {
                    matmul_rows(a_data, b_data, chunk, row0, k, n);
                });
            }
        });
    } else {
        matmul_rows(a.data(), b.data(), &mut out, 0, k, n);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes rows `[row0, row0 + chunk_rows)` of the product into `out_chunk`.
fn matmul_rows(a: &[f32], b: &[f32], out_chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_chunk.len() / n.max(1);
    for r in 0..rows {
        let i = row0 + r;
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_chunk[r * n..(r + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `a × bᵀ` without materialising the transpose: `[m, k] × [n, k]ᵀ → [m, n]`.
///
/// Splits output rows over scoped threads under the same policy as
/// [`matmul`] — the backward-pass GEMMs used to stay serial no matter how
/// large the gradient product was.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the `k` dimensions disagree.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = mri_telemetry::prof_scope!("tensor.matmul_bt");
    assert_eq!(a.shape().rank(), 2, "matmul_bt lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul_bt rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_bt inner dimension mismatch");
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    if let Some(rows_per) = row_split(m, m * n * k) {
        // Worker panics propagate out of `scope` after all threads joined.
        mri_sync::thread::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = t * rows_per;
                scope.spawn(move || {
                    matmul_bt_rows(a_data, b_data, chunk, row0, k, n);
                });
            }
        });
    } else {
        matmul_bt_rows(a_data, b_data, &mut out, 0, k, n);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes rows `[row0, row0 + chunk_rows)` of `a × bᵀ` into `out_chunk`.
fn matmul_bt_rows(a: &[f32], b: &[f32], out_chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_chunk.len() / n.max(1);
    for r in 0..rows {
        let i = row0 + r;
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out_chunk[r * n..(r + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            *o = acc;
        }
    }
}

/// `aᵀ × b` without materialising the transpose: `[k, m]ᵀ × [k, n] → [m, n]`.
///
/// Splits output rows over scoped threads under the same policy as
/// [`matmul`]; each worker walks the full `k` extent so per-element
/// accumulation order (and thus the result, bit for bit) matches the serial
/// kernel.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the `k` dimensions disagree.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = mri_telemetry::prof_scope!("tensor.matmul_at");
    assert_eq!(a.shape().rank(), 2, "matmul_at lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul_at rhs must be rank 2");
    let (k, m) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_at inner dimension mismatch");
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    if let Some(rows_per) = row_split(m, m * n * k) {
        // Worker panics propagate out of `scope` after all threads joined.
        mri_sync::thread::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = t * rows_per;
                scope.spawn(move || {
                    matmul_at_rows(a_data, b_data, chunk, row0, k, m, n);
                });
            }
        });
    } else {
        matmul_at_rows(a_data, b_data, &mut out, 0, k, m, n);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes rows `[row0, row0 + chunk_rows)` of `aᵀ × b` into `out_chunk`.
fn matmul_at_rows(
    a: &[f32],
    b: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    let rows = out_chunk.len() / n.max(1);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for r in 0..rows {
            let av = a_row[row0 + r];
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out_chunk[r * n..(r + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Dot product of two equal-length 1-D tensors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| x * y)
        .sum()
}

/// Number of worker threads to use for parallel kernels.
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.dim(0), a.dim(1), b.dim(1));
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[3, 3]);
        assert_eq!(matmul(&a, &Tensor::eye(3)).data(), a.data());
        assert_eq!(matmul(&Tensor::eye(3), &a).data(), a.data());
    }

    #[test]
    fn matmul_matches_naive_medium() {
        let mut seed = 1234u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a = Tensor::from_vec((0..40 * 17).map(|_| next()).collect(), &[40, 17]);
        let b = Tensor::from_vec((0..17 * 23).map(|_| next()).collect(), &[17, 23]);
        assert_close(matmul(&a, &b).data(), naive_matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Large enough to cross the parallel threshold on multi-core hosts.
        let m = 256;
        let k = 40;
        let n = 40;
        let a = Tensor::from_vec((0..m * k).map(|x| (x % 7) as f32 - 3.0).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|x| (x % 5) as f32 - 2.0).collect(), &[k, n]);
        assert_close(matmul(&a, &b).data(), naive_matmul(&a, &b).data(), 1e-3);
    }

    #[test]
    fn matmul_bt_parallel_path_matches_naive() {
        // Same sizing as `matmul_parallel_path_matches_naive`: enough output
        // rows and multiplies to cross `row_split` on multi-core hosts.
        let m = 256;
        let k = 40;
        let n = 40;
        let a = Tensor::from_vec((0..m * k).map(|x| (x % 7) as f32 - 3.0).collect(), &[m, k]);
        let b = Tensor::from_vec((0..n * k).map(|x| (x % 5) as f32 - 2.0).collect(), &[n, k]);
        let expected = naive_matmul(&a, &b.transpose());
        assert_close(matmul_bt(&a, &b).data(), expected.data(), 1e-3);
    }

    #[test]
    fn matmul_at_parallel_path_matches_naive() {
        let m = 256;
        let k = 40;
        let n = 40;
        let a = Tensor::from_vec((0..k * m).map(|x| (x % 7) as f32 - 3.0).collect(), &[k, m]);
        let b = Tensor::from_vec((0..k * n).map(|x| (x % 5) as f32 - 2.0).collect(), &[k, n]);
        let expected = naive_matmul(&a.transpose(), &b);
        assert_close(matmul_at(&a, &b).data(), expected.data(), 1e-3);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let expected = matmul(&a, &b.transpose());
        assert_close(matmul_bt(&a, &b).data(), expected.data(), 1e-5);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let expected = matmul(&a.transpose(), &b);
        assert_close(matmul_at(&a, &b).data(), expected.data(), 1e-5);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, -5.0, 6.0]);
        assert_eq!(dot(&a, &b), 12.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }
}
