//! Matrix multiplication and related linear-algebra kernels.
//!
//! All three GEMM layouts dispatch through the persistent worker pool
//! (`mri_sync::pool`, DESIGN.md §13) and share one bit-order contract:
//! every output element accumulates its products in ascending-`p` order in
//! a single f32 chain, exactly like the scalar reference loop. The blocked
//! microkernels get their speed from processing `JB` output columns per
//! strip — `JB` *independent* chains advancing together (instruction
//! parallelism + one store per element) — never from reordering any single
//! element's chain. That is what keeps results bit-identical across
//! `MRI_THREADS` settings and bit-identical to the packed shift-add
//! serving kernels (`mri-quant`), which walk terms in the same ascending
//! weight-index order.

use crate::Tensor;
use mri_sync::pool;

/// Output rows per pool job. Fixed — never derived from the lane count —
/// so chunk boundaries (and therefore which serial kernel invocation
/// computes each element) are identical at every `MRI_THREADS` setting.
pub(crate) const PAR_GRAIN_ROWS: usize = 16;

/// Minimum multiply count before a GEMM dispatches to the pool.
pub(crate) const PAR_MIN_MULTS: usize = 1 << 16;

/// Column-strip width of the blocked microkernels: the number of output
/// accumulators held in registers while `p` sweeps the depth. Each
/// accumulator is its own dependency chain receiving one add per `p` step,
/// so the strip must be wide enough to cover the FPU's add latency with
/// independent work — 16 lanes (four 4-wide vectors) keeps the ports busy
/// on the SSE2 baseline without spilling.
const JB: usize = 16;

/// Shared dispatch policy for the three GEMM kernels: pool the `m` output
/// rows when extra lanes exist, there are at least two row grains to hand
/// out, and the multiply count amortises dispatch overhead.
fn use_pool(m: usize, mults: usize) -> bool {
    pool::lanes() > 1 && m >= 2 * PAR_GRAIN_ROWS && mults > PAR_MIN_MULTS
}

/// Multiplies two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
///
/// Dispatches fixed-size row chunks to the worker pool when the problem is
/// large enough (see `use_pool`); each chunk runs the blocked ikj
/// microkernel `matmul_rows`.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use mri_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(ops::matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = mri_telemetry::prof_scope!("tensor.matmul");
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();
    if use_pool(m, m * n * k) {
        // Job panics propagate out of `scope` after the group drains.
        pool::scope(|s| {
            for (t, chunk) in out.chunks_mut(PAR_GRAIN_ROWS * n).enumerate() {
                let row0 = t * PAR_GRAIN_ROWS;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.matmul.chunk");
                    matmul_rows(a_data, b_data, chunk, row0, k, n);
                });
            }
        });
    } else {
        matmul_rows(a_data, b_data, &mut out, 0, k, n);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes rows `[row0, row0 + chunk_rows)` of the product into `out_chunk`.
///
/// Blocked ikj microkernel: for each output row, columns advance in strips
/// of [`JB`] accumulators held in registers while `p` sweeps the depth.
/// Zero `a` elements skip a whole strip-row of multiplies at one branch per
/// `p` (quantized nets are full of exact zeros); skipping is bit-neutral
/// because an accumulator that starts at `+0.0` can never become `-0.0`
/// and `x + ±0.0 == x` for every other `x`.
fn matmul_rows(a: &[f32], b: &[f32], out_chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 || out_chunk.is_empty() {
        return;
    }
    let rows = out_chunk.len() / n;
    for r in 0..rows {
        let a_row = &a[(row0 + r) * k..][..k];
        let out_row = &mut out_chunk[r * n..(r + 1) * n];
        gemm_row(a_row, b, out_row, n);
    }
}

/// One output row of `a_row × b` (`b` row-major `[k, n]`): columns advance
/// in strips of [`JB`] register accumulators while `p` sweeps the depth,
/// reading `b` rows at unit stride. Shared by [`matmul_rows`] and the
/// lhs-packed [`matmul_at_rows`].
fn gemm_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], n: usize) {
    let mut j0 = 0;
    while j0 + JB <= n {
        let mut acc = [0.0f32; JB];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let bs = &b[p * n + j0..][..JB];
            for (l, &bv) in bs.iter().enumerate() {
                acc[l] += av * bv;
            }
        }
        out_row[j0..j0 + JB].copy_from_slice(&acc);
        j0 += JB;
    }
    for j in j0..n {
        let mut acc = 0.0f32;
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            acc += av * b[p * n + j];
        }
        out_row[j] = acc;
    }
}

/// `a × bᵀ` without materialising the transpose: `[m, k] × [n, k]ᵀ → [m, n]`.
///
/// Pool dispatch and bit-order contract as for [`matmul`]. The strip of
/// `JB` simultaneous dot products is what broke the old kernel's
/// single-accumulator latency chain — one fused multiply per cycle needs
/// several independent adds in flight.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the `k` dimensions disagree.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = mri_telemetry::prof_scope!("tensor.matmul_bt");
    assert_eq!(a.shape().rank(), 2, "matmul_bt lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul_bt rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_bt inner dimension mismatch");
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    if use_pool(m, m * n * k) {
        // Job panics propagate out of `scope` after the group drains.
        pool::scope(|s| {
            for (t, chunk) in out.chunks_mut(PAR_GRAIN_ROWS * n).enumerate() {
                let row0 = t * PAR_GRAIN_ROWS;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.matmul_bt.chunk");
                    matmul_bt_rows(a_data, b_data, chunk, row0, k, n);
                });
            }
        });
    } else {
        matmul_bt_rows(a_data, b_data, &mut out, 0, k, n);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes rows `[row0, row0 + chunk_rows)` of `a × bᵀ` into `out_chunk`.
///
/// Strips run outermost: each strip of [`JB`] `b` rows is transposed once
/// into a contiguous `k × JB` tile (`tile[p·JB + l] = b[(j0 + l)·k + p]`)
/// and reused by every `a` row of the chunk, so the gather cost is
/// amortised over the row block and the inner loop reads the tile at unit
/// stride — the same vectorisable shape as the [`matmul`] microkernel.
/// Per-element accumulation order is unchanged from the scalar kernel
/// (ascending `p`, no zero-skip, exactly `k` adds per element).
fn matmul_bt_rows(a: &[f32], b: &[f32], out_chunk: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 || out_chunk.is_empty() {
        return;
    }
    let rows = out_chunk.len() / n;
    // One tile allocation per kernel invocation, reused across strips.
    let mut tile = vec![0.0f32; k * JB];
    let mut j0 = 0;
    while j0 + JB <= n {
        for l in 0..JB {
            let b_row = &b[(j0 + l) * k..][..k];
            for (p, &bv) in b_row.iter().enumerate() {
                tile[p * JB + l] = bv;
            }
        }
        for r in 0..rows {
            let a_row = &a[(row0 + r) * k..][..k];
            let mut acc = [0.0f32; JB];
            for (p, &av) in a_row.iter().enumerate() {
                let ts = &tile[p * JB..][..JB];
                for (l, &tv) in ts.iter().enumerate() {
                    acc[l] += av * tv;
                }
            }
            out_chunk[r * n + j0..r * n + j0 + JB].copy_from_slice(&acc);
        }
        j0 += JB;
    }
    for j in j0..n {
        let b_row = &b[j * k..][..k];
        for r in 0..rows {
            let a_row = &a[(row0 + r) * k..][..k];
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            out_chunk[r * n + j] = acc;
        }
    }
}

/// `aᵀ × b` without materialising the transpose: `[k, m]ᵀ × [k, n] → [m, n]`.
///
/// Pool dispatch and bit-order contract as for [`matmul`]; the microkernel
/// walks `a` down its `m`-strided columns, so per-element order is the
/// same ascending-`p` chain the old pkj kernel produced.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the `k` dimensions disagree.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = mri_telemetry::prof_scope!("tensor.matmul_at");
    assert_eq!(a.shape().rank(), 2, "matmul_at lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "matmul_at rhs must be rank 2");
    let (k, m) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_at inner dimension mismatch");
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    if use_pool(m, m * n * k) {
        // Job panics propagate out of `scope` after the group drains.
        pool::scope(|s| {
            for (t, chunk) in out.chunks_mut(PAR_GRAIN_ROWS * n).enumerate() {
                let row0 = t * PAR_GRAIN_ROWS;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.matmul_at.chunk");
                    matmul_at_rows(a_data, b_data, chunk, row0, k, m, n);
                });
            }
        });
    } else {
        matmul_at_rows(a_data, b_data, &mut out, 0, k, m, n);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes rows `[row0, row0 + chunk_rows)` of `aᵀ × b` into `out_chunk`.
///
/// `a`'s columns are packed [`PAR_GRAIN_ROWS`] rows at a time into a
/// row-major scratch block (`packed[r·k + p] = a[p·m + i]`) so the strip
/// microkernel reads the lhs at unit stride like [`matmul_rows`] does; the
/// block is one allocation per invocation, reused across row blocks.
/// Per-element chains are the same ascending-`p` order the strided kernel
/// produced.
fn matmul_at_rows(
    a: &[f32],
    b: &[f32],
    out_chunk: &mut [f32],
    row0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    if n == 0 || out_chunk.is_empty() {
        return;
    }
    let rows = out_chunk.len() / n;
    let mut packed = vec![0.0f32; PAR_GRAIN_ROWS.min(rows) * k];
    let mut r0 = 0;
    while r0 < rows {
        let block = PAR_GRAIN_ROWS.min(rows - r0);
        for (p, a_row) in a.chunks(m).enumerate().take(k) {
            for r in 0..block {
                packed[r * k + p] = a_row[row0 + r0 + r];
            }
        }
        for r in 0..block {
            let a_row = &packed[r * k..][..k];
            let out_row = &mut out_chunk[(r0 + r) * n..(r0 + r + 1) * n];
            gemm_row(a_row, b, out_row, n);
        }
        r0 += block;
    }
}

/// Dot product of two equal-length 1-D tensors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| x * y)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.dim(0), a.dim(1), b.dim(1));
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[3, 3]);
        assert_eq!(matmul(&a, &Tensor::eye(3)).data(), a.data());
        assert_eq!(matmul(&Tensor::eye(3), &a).data(), a.data());
    }

    #[test]
    fn matmul_matches_naive_medium() {
        let mut seed = 1234u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a = Tensor::from_vec((0..40 * 17).map(|_| next()).collect(), &[40, 17]);
        let b = Tensor::from_vec((0..17 * 23).map(|_| next()).collect(), &[17, 23]);
        assert_close(matmul(&a, &b).data(), naive_matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Large enough to cross the pool-dispatch threshold on multi-lane
        // hosts.
        let m = 256;
        let k = 40;
        let n = 40;
        let a = Tensor::from_vec((0..m * k).map(|x| (x % 7) as f32 - 3.0).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|x| (x % 5) as f32 - 2.0).collect(), &[k, n]);
        assert_close(matmul(&a, &b).data(), naive_matmul(&a, &b).data(), 1e-3);
    }

    #[test]
    fn matmul_bt_parallel_path_matches_naive() {
        // Same sizing as `matmul_parallel_path_matches_naive`: enough output
        // rows and multiplies to cross the pool threshold on multi-lane
        // hosts.
        let m = 256;
        let k = 40;
        let n = 40;
        let a = Tensor::from_vec((0..m * k).map(|x| (x % 7) as f32 - 3.0).collect(), &[m, k]);
        let b = Tensor::from_vec((0..n * k).map(|x| (x % 5) as f32 - 2.0).collect(), &[n, k]);
        let expected = naive_matmul(&a, &b.transpose());
        assert_close(matmul_bt(&a, &b).data(), expected.data(), 1e-3);
    }

    #[test]
    fn matmul_at_parallel_path_matches_naive() {
        let m = 256;
        let k = 40;
        let n = 40;
        let a = Tensor::from_vec((0..k * m).map(|x| (x % 7) as f32 - 3.0).collect(), &[k, m]);
        let b = Tensor::from_vec((0..k * n).map(|x| (x % 5) as f32 - 2.0).collect(), &[k, n]);
        let expected = naive_matmul(&a.transpose(), &b);
        assert_close(matmul_at(&a, &b).data(), expected.data(), 1e-3);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let expected = matmul(&a, &b.transpose());
        assert_close(matmul_bt(&a, &b).data(), expected.data(), 1e-5);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let expected = matmul(&a.transpose(), &b);
        assert_close(matmul_at(&a, &b).data(), expected.data(), 1e-5);
    }

    /// The bit-order contract: the blocked microkernels must equal a plain
    /// per-element ascending-`p` chain bit for bit, at strip-remainder
    /// widths too (n = 19 exercises one full strip + 3 remainder columns).
    #[test]
    fn blocked_kernels_are_bit_identical_to_ordered_reference() {
        let (m, k, n) = (13, 21, 19);
        let mut seed = 7u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Quantized-flavoured values with plenty of exact zeros.
            (((seed >> 33) % 9) as f32 - 4.0) * 0.25
        };
        let a = Tensor::from_vec((0..m * k).map(|_| next()).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|_| next()).collect(), &[k, n]);

        let mut reference = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                reference[i * n + j] = acc;
            }
        }
        let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(matmul(&a, &b).data()), bits(&reference));
        assert_eq!(bits(matmul_bt(&a, &b.transpose()).data()), bits(&reference));
        assert_eq!(bits(matmul_at(&a.transpose(), &b).data()), bits(&reference));
    }

    /// Degenerate-shape regression: `n == 0` (and `m == 0`) GEMMs used to
    /// lean on an `n.max(1)` division inside the row workers; they must
    /// return empty tensors of the right shape without touching the
    /// kernels.
    #[test]
    fn degenerate_empty_dims_return_empty_outputs() {
        let cases = [
            matmul(&Tensor::zeros(&[4, 3]), &Tensor::zeros(&[3, 0])),
            matmul(&Tensor::zeros(&[0, 3]), &Tensor::zeros(&[3, 5])),
            matmul(&Tensor::zeros(&[4, 0]), &Tensor::zeros(&[0, 5])),
            matmul_bt(&Tensor::zeros(&[4, 3]), &Tensor::zeros(&[0, 3])),
            matmul_at(&Tensor::zeros(&[3, 0]), &Tensor::zeros(&[3, 5])),
        ];
        let shapes = [[4, 0], [0, 5], [4, 5], [4, 0], [0, 5]];
        for (t, want) in cases.iter().zip(shapes) {
            assert_eq!([t.dim(0), t.dim(1)], want);
            if want == [4, 5] {
                // k == 0: a defined, all-zero product.
                assert!(t.data().iter().all(|&v| v == 0.0));
            } else {
                assert!(t.data().is_empty());
            }
        }
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, -5.0, 6.0]);
        assert_eq!(dot(&a, &b), 12.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }
}
