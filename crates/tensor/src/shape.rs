//! Shape utilities for row-major tensors.

use std::fmt;

/// The shape of a tensor: a list of dimension sizes, row-major.
///
/// `Shape` is a thin wrapper around `Vec<usize>` adding the derived strides
/// and a few convenience queries.
///
/// # Examples
///
/// ```
/// use mri_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.dims[d],
                "index {i} out of bounds for dim {d} (size {})",
                self.dims[d]
            );
            off += i * s;
        }
        off
    }

    /// Size of one dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= rank`.
    pub fn dim(&self, dim: usize) -> usize {
        self.dims[dim]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(&[5, 7]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[2, 3]), 2 * 7 + 3);
        assert_eq!(s.offset(&[4, 6]), 34);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn empty_dimension_means_no_elements() {
        let s = Shape::new(&[3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
