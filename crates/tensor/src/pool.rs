//! Max and average pooling with backward passes.
//!
//! Large inputs dispatch over [`mri_sync::pool`] in fixed-size blocks of
//! `BC_GRAIN` `(batch, channel)` planes. Every plane is computed by the same
//! worker function in both the pooled and the serial branch, and each output
//! element is written exactly once, so results are bit-identical regardless
//! of the worker count.

use crate::Tensor;
use mri_sync::pool;

/// Planes per pooled job. Fixed (never derived from the lane count) so chunk
/// boundaries — and thus f32 behaviour — do not depend on `MRI_THREADS`.
const BC_GRAIN: usize = 4;

/// Minimum element-work before pooled dispatch is worth the queueing cost.
const PAR_MIN_ELEMS: usize = 1 << 16;

fn use_pool(units: usize, elems: usize) -> bool {
    pool::lanes() > 1 && units >= 2 && elems > PAR_MIN_ELEMS
}

/// Result of a max-pooling forward pass.
///
/// Keeps the argmax indices so the backward pass can route gradients to the
/// winning input positions.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled tensor `[N, C, H_out, W_out]`.
    pub output: Tensor,
    /// Flat input index (within the whole input tensor) of each maximum.
    pub argmax: Vec<usize>,
}

/// Max-pools an `[N, C, H, W]` tensor with a square window and stride.
///
/// # Panics
///
/// Panics if the input is not rank 4 or the window does not fit.
pub fn maxpool2d(input: &Tensor, window: usize, stride: usize) -> MaxPoolOutput {
    assert_eq!(input.shape().rank(), 4, "maxpool2d expects [N, C, H, W]");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert!(h >= window && w >= window, "pool window larger than input");
    let ho = (h - window) / stride + 1;
    let wo = (w - window) / stride + 1;
    let plane = ho * wo;
    let mut out = vec![0.0f32; n * c * plane];
    let mut argmax = vec![0usize; n * c * plane];
    let data = input.data();
    if use_pool(n * c, n * c * plane * window * window) {
        pool::scope(|s| {
            for (t, (ob, ab)) in out
                .chunks_mut(BC_GRAIN * plane)
                .zip(argmax.chunks_mut(BC_GRAIN * plane))
                .enumerate()
            {
                let bc0 = t * BC_GRAIN;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.maxpool.chunk");
                    maxpool_block(data, ob, ab, bc0, (h, w), (ho, wo), window, stride);
                });
            }
        });
    } else {
        maxpool_block(
            data,
            &mut out,
            &mut argmax,
            0,
            (h, w),
            (ho, wo),
            window,
            stride,
        );
    }
    MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, ho, wo]),
        argmax,
    }
}

/// Max-pools a block of whole `(batch, channel)` planes starting at `bc0`.
// analyze: allow(panic, window positions stay inside the image because the
// caller asserts the window fits and ho and wo are derived from that fit)
#[allow(clippy::too_many_arguments)]
fn maxpool_block(
    data: &[f32],
    out_block: &mut [f32],
    arg_block: &mut [usize],
    bc0: usize,
    (h, w): (usize, usize),
    (ho, wo): (usize, usize),
    window: usize,
    stride: usize,
) {
    let plane = ho * wo;
    for (u, (out_plane, arg_plane)) in out_block
        .chunks_mut(plane)
        .zip(arg_block.chunks_mut(plane))
        .enumerate()
    {
        let img_off = (bc0 + u) * h * w;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..window {
                    for kx in 0..window {
                        let idx = img_off + (oy * stride + ky) * w + (ox * stride + kx);
                        if data[idx] > best {
                            best = data[idx];
                            best_idx = idx;
                        }
                    }
                }
                out_plane[oy * wo + ox] = best;
                arg_plane[oy * wo + ox] = best_idx;
            }
        }
    }
}

/// [`maxpool2d`] on raw slices into caller-provided buffers — the
/// allocation-free variant serving engines reuse across calls. `arg` is the
/// argmax scratch (same length as `out`); callers that only need values keep
/// one reusable scratch around. Runs the exact `maxpool_block` worker with
/// the same pool dispatch, so results are bit-identical to [`maxpool2d`].
///
/// # Panics
///
/// Panics if the window does not fit or the buffer lengths do not match.
// analyze: allow(panic, the window fit and all three buffer lengths are
// asserted on entry and FrozenModel::freeze rejects zero pool strides --
// h minus window cannot underflow past the fit assert)
pub fn maxpool2d_values_into(
    data: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    window: usize,
    stride: usize,
    arg: &mut [usize],
    out: &mut [f32],
) {
    assert!(h >= window && w >= window, "pool window larger than input");
    assert_eq!(data.len(), n * c * h * w, "maxpool input length mismatch");
    let ho = (h - window) / stride + 1;
    let wo = (w - window) / stride + 1;
    let plane = ho * wo;
    assert_eq!(out.len(), n * c * plane, "maxpool output length mismatch");
    assert_eq!(arg.len(), n * c * plane, "maxpool argmax length mismatch");
    if use_pool(n * c, n * c * plane * window * window) {
        pool::scope(|s| {
            for (t, (ob, ab)) in out
                .chunks_mut(BC_GRAIN * plane)
                .zip(arg.chunks_mut(BC_GRAIN * plane))
                .enumerate()
            {
                let bc0 = t * BC_GRAIN;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.maxpool.chunk");
                    maxpool_block(data, ob, ab, bc0, (h, w), (ho, wo), window, stride);
                });
            }
        });
    } else {
        maxpool_block(data, out, arg, 0, (h, w), (ho, wo), window, stride);
    }
}

/// Backward pass of [`maxpool2d`]: routes each output gradient to the input
/// position that won the max.
///
/// Stays serial: the argmax scatter may hit the same input index from many
/// output positions, so the writes are not disjoint.
///
/// # Panics
///
/// Panics if `grad_out` does not match the forward output length.
pub fn maxpool2d_backward(grad_out: &Tensor, fwd: &MaxPoolOutput, input_len: usize) -> Tensor {
    assert_eq!(
        grad_out.len(),
        fwd.argmax.len(),
        "grad/argmax length mismatch"
    );
    let mut gx = vec![0.0f32; input_len];
    for (g, &idx) in grad_out.data().iter().zip(fwd.argmax.iter()) {
        gx[idx] += g;
    }
    // Returned flat; the caller reshapes to the original input dims.
    Tensor::from_vec(gx, &[input_len])
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
///
/// # Panics
///
/// Panics if the input is not rank 4.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    assert_eq!(
        input.shape().rank(),
        4,
        "global_avgpool expects [N, C, H, W]"
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let hw = h * w;
    let mut out = vec![0.0f32; n * c];
    let data = input.data();
    if use_pool(n * c, n * c * hw) {
        pool::scope(|s| {
            for (t, ob) in out.chunks_mut(BC_GRAIN).enumerate() {
                let bc0 = t * BC_GRAIN;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.gap.chunk");
                    global_avg_block(data, ob, bc0, hw);
                });
            }
        });
    } else {
        global_avg_block(data, &mut out, 0, hw);
    }
    Tensor::from_vec(out, &[n, c])
}

/// [`global_avgpool`] on raw slices into a caller-provided `[N·C]` buffer —
/// the allocation-free variant, bit-identical to [`global_avgpool`] (same
/// worker, same pool dispatch).
///
/// # Panics
///
/// Panics if the slice lengths do not match the geometry.
// analyze: allow(panic, both buffer lengths are asserted against the
// geometry on entry and the plane chunks tile them exactly)
pub fn global_avgpool_into(
    data: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    out: &mut [f32],
) {
    let hw = h * w;
    assert_eq!(data.len(), n * c * hw, "global_avgpool input mismatch");
    assert_eq!(out.len(), n * c, "global_avgpool output mismatch");
    if use_pool(n * c, n * c * hw) {
        pool::scope(|s| {
            for (t, ob) in out.chunks_mut(BC_GRAIN).enumerate() {
                let bc0 = t * BC_GRAIN;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.gap.chunk");
                    global_avg_block(data, ob, bc0, hw);
                });
            }
        });
    } else {
        global_avg_block(data, out, 0, hw);
    }
}

/// Averages whole `(batch, channel)` planes starting at `bc0` into
/// `out_block`, one output scalar per plane.
// analyze: allow(panic, plane windows lie inside the asserted input length
// and the divisor is a float cast so the division cannot trap)
fn global_avg_block(data: &[f32], out_block: &mut [f32], bc0: usize, hw: usize) {
    for (u, o) in out_block.iter_mut().enumerate() {
        let base = (bc0 + u) * hw;
        let s: f32 = data[base..base + hw].iter().sum();
        *o = s / hw as f32;
    }
}

/// Backward pass of [`global_avgpool`]: spreads each gradient uniformly over
/// the spatial positions.
///
/// # Panics
///
/// Panics if `grad_out` is not `[N, C]`.
pub fn global_avgpool_backward(grad_out: &Tensor, h: usize, w: usize) -> Tensor {
    assert_eq!(grad_out.shape().rank(), 2, "grad_out must be [N, C]");
    let (n, c) = (grad_out.dim(0), grad_out.dim(1));
    let hw = h * w;
    let mut gx = vec![0.0f32; n * c * hw];
    for bc in 0..n * c {
        let g = grad_out.data()[bc] / hw as f32;
        for s in 0..hw {
            gx[bc * hw + s] = g;
        }
    }
    Tensor::from_vec(gx, &[n, c, h, w])
}

/// Average-pools an `[N, C, H, W]` tensor with a square window and stride.
///
/// # Panics
///
/// Panics if the input is not rank 4 or the window does not fit.
pub fn avgpool2d(input: &Tensor, window: usize, stride: usize) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "avgpool2d expects [N, C, H, W]");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert!(h >= window && w >= window, "pool window larger than input");
    let ho = (h - window) / stride + 1;
    let wo = (w - window) / stride + 1;
    let plane = ho * wo;
    let mut out = vec![0.0f32; n * c * plane];
    let data = input.data();
    if use_pool(n * c, n * c * plane * window * window) {
        pool::scope(|s| {
            for (t, ob) in out.chunks_mut(BC_GRAIN * plane).enumerate() {
                let bc0 = t * BC_GRAIN;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.avgpool.chunk");
                    avgpool_block(data, ob, bc0, (h, w), (ho, wo), window, stride);
                });
            }
        });
    } else {
        avgpool_block(data, &mut out, 0, (h, w), (ho, wo), window, stride);
    }
    Tensor::from_vec(out, &[n, c, ho, wo])
}

/// Average-pools a block of whole `(batch, channel)` planes starting at
/// `bc0`. The window accumulation runs in `(ky, kx)` ascending order in both
/// dispatch branches.
fn avgpool_block(
    data: &[f32],
    out_block: &mut [f32],
    bc0: usize,
    (h, w): (usize, usize),
    (ho, wo): (usize, usize),
    window: usize,
    stride: usize,
) {
    let plane = ho * wo;
    let inv = 1.0 / (window * window) as f32;
    for (u, out_plane) in out_block.chunks_mut(plane).enumerate() {
        let img_off = (bc0 + u) * h * w;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0.0;
                for ky in 0..window {
                    for kx in 0..window {
                        acc += data[img_off + (oy * stride + ky) * w + (ox * stride + kx)];
                    }
                }
                out_plane[oy * wo + ox] = acc * inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_basic() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let out = maxpool2d(&input, 2, 2);
        assert_eq!(out.output.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(out.argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_winner() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 2, 2]);
        let fwd = maxpool2d(&input, 2, 2);
        let grad = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]);
        let gx = maxpool2d_backward(&grad, &fwd, 4);
        assert_eq!(gx.data(), &[0.0, 10.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_basic() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let out = avgpool2d(&input, 2, 2);
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn global_avgpool_and_backward() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]);
        let out = global_avgpool(&input);
        assert_eq!(out.data(), &[4.0, 2.0]);
        let gx = global_avgpool_backward(&out, 2, 2);
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn maxpool_stride_one_overlapping_windows() {
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let out = maxpool2d(&input, 2, 1);
        assert_eq!(out.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.output.data(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn pooled_dispatch_matches_serial_bits() {
        // Big enough to cross PAR_MIN_ELEMS with a 3x3 window so the pooled
        // branch is exercised whenever lanes > 1; the override pins the
        // serial reference regardless of MRI_THREADS.
        let len = 4 * 8 * 24 * 24;
        let vals: Vec<f32> = (0..len)
            .map(|i| ((i * 37) % 101) as f32 * 0.25 - 12.5)
            .collect();
        let input = Tensor::from_vec(vals, &[4, 8, 24, 24]);
        let serial_pool = mri_sync::Arc::new(pool::Pool::with_workers(0));
        let (s_max, s_avg, s_gap) = pool::with_pool(&serial_pool, || {
            (
                maxpool2d(&input, 3, 2),
                avgpool2d(&input, 3, 2),
                global_avgpool(&input),
            )
        });
        let p_max = maxpool2d(&input, 3, 2);
        let p_avg = avgpool2d(&input, 3, 2);
        let p_gap = global_avgpool(&input);
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&s_max.output), bits(&p_max.output));
        assert_eq!(s_max.argmax, p_max.argmax);
        assert_eq!(bits(&s_avg), bits(&p_avg));
        assert_eq!(bits(&s_gap), bits(&p_gap));
    }
}
