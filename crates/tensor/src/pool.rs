//! Max and average pooling with backward passes.

use crate::Tensor;

/// Result of a max-pooling forward pass.
///
/// Keeps the argmax indices so the backward pass can route gradients to the
/// winning input positions.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled tensor `[N, C, H_out, W_out]`.
    pub output: Tensor,
    /// Flat input index (within the whole input tensor) of each maximum.
    pub argmax: Vec<usize>,
}

/// Max-pools an `[N, C, H, W]` tensor with a square window and stride.
///
/// # Panics
///
/// Panics if the input is not rank 4 or the window does not fit.
pub fn maxpool2d(input: &Tensor, window: usize, stride: usize) -> MaxPoolOutput {
    assert_eq!(input.shape().rank(), 4, "maxpool2d expects [N, C, H, W]");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert!(h >= window && w >= window, "pool window larger than input");
    let ho = (h - window) / stride + 1;
    let wo = (w - window) / stride + 1;
    let mut out = vec![0.0f32; n * c * ho * wo];
    let mut argmax = vec![0usize; n * c * ho * wo];
    let data = input.data();
    for bc in 0..n * c {
        let img_off = bc * h * w;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..window {
                    for kx in 0..window {
                        let idx = img_off + (oy * stride + ky) * w + (ox * stride + kx);
                        if data[idx] > best {
                            best = data[idx];
                            best_idx = idx;
                        }
                    }
                }
                let o = (bc * ho + oy) * wo + ox;
                out[o] = best;
                argmax[o] = best_idx;
            }
        }
    }
    MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, ho, wo]),
        argmax,
    }
}

/// Backward pass of [`maxpool2d`]: routes each output gradient to the input
/// position that won the max.
///
/// # Panics
///
/// Panics if `grad_out` does not match the forward output length.
pub fn maxpool2d_backward(grad_out: &Tensor, fwd: &MaxPoolOutput, input_len: usize) -> Tensor {
    assert_eq!(
        grad_out.len(),
        fwd.argmax.len(),
        "grad/argmax length mismatch"
    );
    let mut gx = vec![0.0f32; input_len];
    for (g, &idx) in grad_out.data().iter().zip(fwd.argmax.iter()) {
        gx[idx] += g;
    }
    // Returned flat; the caller reshapes to the original input dims.
    Tensor::from_vec(gx, &[input_len])
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
///
/// # Panics
///
/// Panics if the input is not rank 4.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    assert_eq!(
        input.shape().rank(),
        4,
        "global_avgpool expects [N, C, H, W]"
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let hw = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for bc in 0..n * c {
        let s: f32 = input.data()[bc * h * w..(bc + 1) * h * w].iter().sum();
        out[bc] = s / hw;
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of [`global_avgpool`]: spreads each gradient uniformly over
/// the spatial positions.
///
/// # Panics
///
/// Panics if `grad_out` is not `[N, C]`.
pub fn global_avgpool_backward(grad_out: &Tensor, h: usize, w: usize) -> Tensor {
    assert_eq!(grad_out.shape().rank(), 2, "grad_out must be [N, C]");
    let (n, c) = (grad_out.dim(0), grad_out.dim(1));
    let hw = h * w;
    let mut gx = vec![0.0f32; n * c * hw];
    for bc in 0..n * c {
        let g = grad_out.data()[bc] / hw as f32;
        for s in 0..hw {
            gx[bc * hw + s] = g;
        }
    }
    Tensor::from_vec(gx, &[n, c, h, w])
}

/// Average-pools an `[N, C, H, W]` tensor with a square window and stride.
///
/// # Panics
///
/// Panics if the input is not rank 4 or the window does not fit.
pub fn avgpool2d(input: &Tensor, window: usize, stride: usize) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "avgpool2d expects [N, C, H, W]");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert!(h >= window && w >= window, "pool window larger than input");
    let ho = (h - window) / stride + 1;
    let wo = (w - window) / stride + 1;
    let inv = 1.0 / (window * window) as f32;
    let mut out = vec![0.0f32; n * c * ho * wo];
    let data = input.data();
    for bc in 0..n * c {
        let img_off = bc * h * w;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0.0;
                for ky in 0..window {
                    for kx in 0..window {
                        acc += data[img_off + (oy * stride + ky) * w + (ox * stride + kx)];
                    }
                }
                out[(bc * ho + oy) * wo + ox] = acc * inv;
            }
        }
    }
    Tensor::from_vec(out, &[n, c, ho, wo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_basic() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let out = maxpool2d(&input, 2, 2);
        assert_eq!(out.output.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(out.argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_winner() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 2, 2]);
        let fwd = maxpool2d(&input, 2, 2);
        let grad = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]);
        let gx = maxpool2d_backward(&grad, &fwd, 4);
        assert_eq!(gx.data(), &[0.0, 10.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_basic() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let out = avgpool2d(&input, 2, 2);
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn global_avgpool_and_backward() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]);
        let out = global_avgpool(&input);
        assert_eq!(out.data(), &[4.0, 2.0]);
        let gx = global_avgpool_backward(&out, 2, 2);
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn maxpool_stride_one_overlapping_windows() {
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let out = maxpool2d(&input, 2, 1);
        assert_eq!(out.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.output.data(), &[5.0, 6.0, 8.0, 9.0]);
    }
}
