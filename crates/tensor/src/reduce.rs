//! Reductions, softmax and related row-wise transforms.
//!
//! The row-wise transforms dispatch over [`mri_sync::pool`] in fixed-size
//! row blocks once the element count justifies it. Chunk boundaries depend
//! only on the shape (never the lane count) and every row is produced by the
//! same worker function in both branches, so results are bit-identical
//! regardless of `MRI_THREADS`.

use crate::Tensor;
use mri_sync::pool;

/// Rows per pooled softmax/log-softmax job; fixed so chunking — and thus f32
/// behaviour — is independent of the worker count.
const ROW_GRAIN: usize = 16;

/// Channels per pooled [`sum_except_channel`] job.
const CH_GRAIN: usize = 8;

/// Minimum element-work before pooled dispatch is worth the queueing cost.
const PAR_MIN_ELEMS: usize = 1 << 16;

fn use_pool(units: usize, elems: usize) -> bool {
    pool::lanes() > 1 && units >= 2 && elems > PAR_MIN_ELEMS
}

/// Row-wise softmax of a `[N, C]` tensor.
///
/// Numerically stabilised by subtracting the row maximum.
///
/// # Panics
///
/// Panics if the input is not rank 2.
///
/// # Examples
///
/// ```
/// use mri_tensor::{reduce, Tensor};
///
/// let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
/// let p = reduce::softmax(&logits);
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax expects [N, C]");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = vec![0.0f32; n * c];
    let data = logits.data();
    if use_pool(n, n * c) {
        pool::scope(|s| {
            for (t, chunk) in out.chunks_mut(ROW_GRAIN * c).enumerate() {
                let i0 = t * ROW_GRAIN;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.softmax.chunk");
                    softmax_rows(data, chunk, i0, c);
                });
            }
        });
    } else {
        softmax_rows(data, &mut out, 0, c);
    }
    Tensor::from_vec(out, &[n, c])
}

/// Softmax of the rows `i0..` covering `out_chunk`; each row reads
/// `data[(i0 + u) * c ..]` and is fully independent of its neighbours.
fn softmax_rows(data: &[f32], out_chunk: &mut [f32], i0: usize, c: usize) {
    if c == 0 {
        return;
    }
    for (u, out_row) in out_chunk.chunks_mut(c).enumerate() {
        let row = &data[(i0 + u) * c..(i0 + u + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - m).exp();
            out_row[j] = e;
            denom += e;
        }
        for o in out_row.iter_mut() {
            *o /= denom;
        }
    }
}

/// Row-wise softmax with a temperature: `softmax(logits / t)`.
///
/// Used by knowledge distillation (Hinton et al.).
///
/// # Panics
///
/// Panics if `t <= 0` or the input is not rank 2.
pub fn softmax_with_temperature(logits: &Tensor, t: f32) -> Tensor {
    assert!(t > 0.0, "temperature must be positive");
    softmax(&logits.scale(1.0 / t))
}

/// Row-wise log-softmax of a `[N, C]` tensor.
///
/// # Panics
///
/// Panics if the input is not rank 2.
pub fn log_softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "log_softmax expects [N, C]");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = vec![0.0f32; n * c];
    let data = logits.data();
    if use_pool(n, n * c) {
        pool::scope(|s| {
            for (t, chunk) in out.chunks_mut(ROW_GRAIN * c).enumerate() {
                let i0 = t * ROW_GRAIN;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.logsoftmax.chunk");
                    log_softmax_rows(data, chunk, i0, c);
                });
            }
        });
    } else {
        log_softmax_rows(data, &mut out, 0, c);
    }
    Tensor::from_vec(out, &[n, c])
}

/// Log-softmax of the rows `i0..` covering `out_chunk`.
fn log_softmax_rows(data: &[f32], out_chunk: &mut [f32], i0: usize, c: usize) {
    if c == 0 {
        return;
    }
    for (u, out_row) in out_chunk.chunks_mut(c).enumerate() {
        let row = &data[(i0 + u) * c..(i0 + u + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln() + m;
        for (o, &v) in out_row.iter_mut().zip(row.iter()) {
            *o = v - lse;
        }
    }
}

/// Row-wise argmax of a `[N, C]` tensor: the predicted class per row.
///
/// # Panics
///
/// Panics if the input is not rank 2.
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    assert_eq!(t.shape().rank(), 2, "argmax_rows expects [N, C]");
    let (n, c) = (t.dim(0), t.dim(1));
    (0..n)
        .map(|i| {
            let row = &t.data()[i * c..(i + 1) * c];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

/// Sums a `[N, C, ...]` tensor over all axes except the channel axis (axis 1),
/// producing a `[C]` tensor. Used for bias gradients.
///
/// Channels are independent outputs, so large inputs dispatch channel blocks
/// over the pool; within a channel the batch contributions accumulate in
/// ascending `b` order in both branches, preserving the serial f32 sum order.
///
/// # Panics
///
/// Panics if the input has rank < 2.
pub fn sum_except_channel(t: &Tensor) -> Tensor {
    assert!(
        t.shape().rank() >= 2,
        "sum_except_channel expects rank >= 2"
    );
    let n = t.dim(0);
    let c = t.dim(1);
    let spatial: usize = t.dims()[2..].iter().product();
    let mut out = vec![0.0f32; c];
    let data = t.data();
    if use_pool(c, n * c * spatial) {
        pool::scope(|s| {
            for (t_idx, chunk) in out.chunks_mut(CH_GRAIN).enumerate() {
                let ch0 = t_idx * CH_GRAIN;
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.bias_sum.chunk");
                    sum_channels(data, chunk, ch0, n, c, spatial);
                });
            }
        });
    } else {
        sum_channels(data, &mut out, 0, n, c, spatial);
    }
    Tensor::from_vec(out, &[c])
}

/// Sums all-but-channel axes for channels `ch0..` covering `out_chunk`,
/// accumulating batch blocks in ascending `b` order per channel.
fn sum_channels(
    data: &[f32],
    out_chunk: &mut [f32],
    ch0: usize,
    n: usize,
    c: usize,
    spatial: usize,
) {
    for (u, o) in out_chunk.iter_mut().enumerate() {
        let ch = ch0 + u;
        let mut acc = 0.0f32;
        for b in 0..n {
            let base = (b * c + ch) * spatial;
            acc += data[base..base + spatial].iter().sum::<f32>();
        }
        *o = acc;
    }
}

/// Classification accuracy of logits `[N, C]` against integer labels.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&t);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // softmax is shift-invariant: row 0 and row 1 differ by a constant 2.
        assert_close(&p.data()[..3], &p.data()[3..], 1e-6);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 999.0], &[1, 2]);
        let p = softmax(&t);
        assert!(p.data()[0].is_finite() && p.data()[1].is_finite());
        assert!(p.data()[0] > p.data()[1]);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.25, 2.0], &[1, 3]);
        let ls = log_softmax(&t);
        let p = softmax(&t);
        for j in 0..3 {
            assert!((ls.data()[j] - p.data()[j].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn temperature_flattens_distribution() {
        let t = Tensor::from_vec(vec![2.0, 0.0], &[1, 2]);
        let sharp = softmax_with_temperature(&t, 0.5);
        let flat = softmax_with_temperature(&t, 4.0);
        assert!(sharp.data()[0] > flat.data()[0]);
        assert!(flat.data()[0] > 0.5);
    }

    #[test]
    fn argmax_rows_and_accuracy() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
        assert_eq!(accuracy(&t, &[1, 0]), 1.0);
        assert_eq!(accuracy(&t, &[1, 1]), 0.5);
        assert_eq!(accuracy(&t, &[0, 1]), 0.0);
    }

    #[test]
    fn sum_except_channel_4d() {
        let t = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        );
        let s = sum_except_channel(&t);
        assert_eq!(s.data(), &[10.0, 100.0]);
    }

    #[test]
    fn sum_except_channel_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s = sum_except_channel(&t);
        assert_eq!(s.data(), &[4.0, 6.0]);
    }

    #[test]
    fn pooled_dispatch_matches_serial_bits() {
        // 256 rows x 512 cols crosses PAR_MIN_ELEMS; the with_pool override
        // pins a serial reference regardless of MRI_THREADS.
        let (n, c) = (256, 512);
        let vals: Vec<f32> = (0..n * c)
            .map(|i| ((i * 31) % 97) as f32 * 0.125 - 6.0)
            .collect();
        let t = Tensor::from_vec(vals, &[n, c]);
        let t4 = t.reshape(&[16, 16, 16, 32]);
        let serial_pool = mri_sync::Arc::new(pool::Pool::with_workers(0));
        let (s_sm, s_ls, s_sum) = pool::with_pool(&serial_pool, || {
            (softmax(&t), log_softmax(&t), sum_except_channel(&t4))
        });
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&s_sm), bits(&softmax(&t)));
        assert_eq!(bits(&s_ls), bits(&log_softmax(&t)));
        assert_eq!(bits(&s_sum), bits(&sum_except_channel(&t4)));
    }
}
