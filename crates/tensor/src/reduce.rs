//! Reductions, softmax and related row-wise transforms.

use crate::Tensor;

/// Row-wise softmax of a `[N, C]` tensor.
///
/// Numerically stabilised by subtracting the row maximum.
///
/// # Panics
///
/// Panics if the input is not rank 2.
///
/// # Examples
///
/// ```
/// use mri_tensor::{reduce, Tensor};
///
/// let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
/// let p = reduce::softmax(&logits);
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax expects [N, C]");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - m).exp();
            out[i * c + j] = e;
            denom += e;
        }
        for j in 0..c {
            out[i * c + j] /= denom;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Row-wise softmax with a temperature: `softmax(logits / t)`.
///
/// Used by knowledge distillation (Hinton et al.).
///
/// # Panics
///
/// Panics if `t <= 0` or the input is not rank 2.
pub fn softmax_with_temperature(logits: &Tensor, t: f32) -> Tensor {
    assert!(t > 0.0, "temperature must be positive");
    softmax(&logits.scale(1.0 / t))
}

/// Row-wise log-softmax of a `[N, C]` tensor.
///
/// # Panics
///
/// Panics if the input is not rank 2.
pub fn log_softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "log_softmax expects [N, C]");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln() + m;
        for j in 0..c {
            out[i * c + j] = row[j] - lse;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Row-wise argmax of a `[N, C]` tensor: the predicted class per row.
///
/// # Panics
///
/// Panics if the input is not rank 2.
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    assert_eq!(t.shape().rank(), 2, "argmax_rows expects [N, C]");
    let (n, c) = (t.dim(0), t.dim(1));
    (0..n)
        .map(|i| {
            let row = &t.data()[i * c..(i + 1) * c];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

/// Sums a `[N, C, ...]` tensor over all axes except the channel axis (axis 1),
/// producing a `[C]` tensor. Used for bias gradients.
///
/// # Panics
///
/// Panics if the input has rank < 2.
pub fn sum_except_channel(t: &Tensor) -> Tensor {
    assert!(
        t.shape().rank() >= 2,
        "sum_except_channel expects rank >= 2"
    );
    let n = t.dim(0);
    let c = t.dim(1);
    let spatial: usize = t.dims()[2..].iter().product();
    let mut out = vec![0.0f32; c];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * spatial;
            out[ch] += t.data()[base..base + spatial].iter().sum::<f32>();
        }
    }
    Tensor::from_vec(out, &[c])
}

/// Classification accuracy of logits `[N, C]` against integer labels.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&t);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // softmax is shift-invariant: row 0 and row 1 differ by a constant 2.
        assert_close(&p.data()[..3], &p.data()[3..], 1e-6);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 999.0], &[1, 2]);
        let p = softmax(&t);
        assert!(p.data()[0].is_finite() && p.data()[1].is_finite());
        assert!(p.data()[0] > p.data()[1]);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.25, 2.0], &[1, 3]);
        let ls = log_softmax(&t);
        let p = softmax(&t);
        for j in 0..3 {
            assert!((ls.data()[j] - p.data()[j].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn temperature_flattens_distribution() {
        let t = Tensor::from_vec(vec![2.0, 0.0], &[1, 2]);
        let sharp = softmax_with_temperature(&t, 0.5);
        let flat = softmax_with_temperature(&t, 4.0);
        assert!(sharp.data()[0] > flat.data()[0]);
        assert!(flat.data()[0] > 0.5);
    }

    #[test]
    fn argmax_rows_and_accuracy() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
        assert_eq!(accuracy(&t, &[1, 0]), 1.0);
        assert_eq!(accuracy(&t, &[1, 1]), 0.5);
        assert_eq!(accuracy(&t, &[0, 1]), 0.0);
    }

    #[test]
    fn sum_except_channel_4d() {
        let t = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        );
        let s = sum_except_channel(&t);
        assert_eq!(s.data(), &[10.0, 100.0]);
    }

    #[test]
    fn sum_except_channel_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s = sum_except_channel(&t);
        assert_eq!(s.data(), &[4.0, 6.0]);
    }
}
