//! The dense, row-major `f32` tensor type.

use crate::Shape;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` owns its storage. All operations allocate fresh output tensors
/// unless the method name says otherwise (`*_inplace`, `map_inplace`).
///
/// # Examples
///
/// ```
/// use mri_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape} ({} elements)",
            data.len(),
            shape.len()
        );
        Tensor { shape, data }
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes, shorthand for `self.shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Size of dimension `d`.
    pub fn dim(&self, d: usize) -> usize {
        self.shape.dim(d)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable reference to the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(shape.len(), self.len(), "reshape element count mismatch");
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place reshape, avoiding a copy.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_into(mut self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(shape.len(), self.len(), "reshape element count mismatch");
        self.shape = shape;
        self
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary operation with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other`, element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flattened tensor.
    ///
    /// Ties resolve to the first occurrence. Returns `0` for an empty tensor.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of the tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.dim(0), self.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Returns the `i`-th slice along the first axis (e.g. one sample of a
    /// batch) as a new tensor with the leading axis removed.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` is out of bounds.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.shape.rank() >= 1, "index_axis0 requires rank >= 1");
        let n = self.dim(0);
        assert!(i < n, "index {i} out of bounds for axis of size {n}");
        let rest: Vec<usize> = self.dims()[1..].to_vec();
        let chunk = self.len() / n;
        Tensor::from_vec(self.data[i * chunk..(i + 1) * chunk].to_vec(), &rest)
    }

    /// Writes `src` into the `i`-th slice along the first axis.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or `i` is out of bounds.
    pub fn set_axis0(&mut self, i: usize, src: &Tensor) {
        let n = self.dim(0);
        assert!(i < n, "index {i} out of bounds for axis of size {n}");
        let chunk = self.len() / n;
        assert_eq!(src.len(), chunk, "slice length mismatch");
        self.data[i * chunk..(i + 1) * chunk].copy_from_slice(&src.data);
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the shapes differ.
    pub fn stack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let inner = parts[0].shape.clone();
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(inner.dims());
        let mut data = Vec::with_capacity(parts.len() * inner.len());
        for p in parts {
            assert_eq!(p.shape, inner, "stack shape mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor {
            shape: Shape::new(&dims),
            data,
        }
    }

    /// Broadcast-adds a 1-D bias over the channel axis of an `[N, C, H, W]`
    /// or `[N, C]` tensor, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the bias length does not match the channel dimension.
    pub fn add_channel_bias(&self, bias: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_channel_bias_inplace(bias);
        out
    }

    /// In-place variant of [`Tensor::add_channel_bias`].
    ///
    /// # Panics
    ///
    /// Panics if the bias length does not match the channel dimension.
    pub fn add_channel_bias_inplace(&mut self, bias: &Tensor) {
        let rank = self.shape.rank();
        assert!(rank == 2 || rank == 4, "channel bias requires rank 2 or 4");
        let c = self.dim(1);
        assert_eq!(bias.len(), c, "bias length must equal channel count");
        let spatial: usize = self.dims()[2..].iter().product();
        let n = self.dim(0);
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * spatial;
                let bv = bias.data[ch];
                for s in 0..spatial {
                    self.data[base + s] += bv;
                }
            }
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 16 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({}, [{} elements, first={:?}...])",
                self.shape,
                self.len(),
                &self.data[..4]
            )
        }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }
}

impl Div<&Tensor> for &Tensor {
    type Output = Tensor;
    fn div(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a / b)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
        assert_eq!(Tensor::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::scalar(3.0).dims(), &[] as &[usize]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        *t.at_mut(&[1, 2]) = 5.0;
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.data()[5], 5.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!((&b / &a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.mean(), 0.625);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.norm_sq() - (1.0 + 4.0 + 9.0 + 0.25)).abs() < 1e-6);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn axis0_slicing_and_stack() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let row1 = t.index_axis0(1);
        assert_eq!(row1.data(), &[4.0, 5.0, 6.0, 7.0]);
        let restacked = Tensor::stack(&[t.index_axis0(0), row1.clone(), t.index_axis0(2)]);
        assert_eq!(restacked.data(), t.data());

        let mut u = Tensor::zeros(&[3, 4]);
        u.set_axis0(1, &row1);
        assert_eq!(u.at(&[1, 3]), 7.0);
        assert_eq!(u.at(&[0, 0]), 0.0);
    }

    #[test]
    fn channel_bias_broadcast_4d() {
        let t = Tensor::zeros(&[1, 2, 2, 2]);
        let bias = Tensor::from_slice(&[1.0, -1.0]);
        let out = t.add_channel_bias(&bias);
        assert_eq!(out.data(), &[1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn channel_bias_broadcast_2d() {
        let t = Tensor::ones(&[2, 3]);
        let bias = Tensor::from_slice(&[0.0, 1.0, 2.0]);
        let out = t.add_channel_bias(&bias);
        assert_eq!(out.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[2, 2]);
        assert_eq!(r.at(&[1, 0]), 3.0);
        let r2 = r.reshape_into(&[4]);
        assert_eq!(r2.dims(), &[4]);
    }
}
