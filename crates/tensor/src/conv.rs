//! 2-D convolution via `im2col`, with data and weight gradients.
//!
//! Layout conventions follow the usual NCHW scheme:
//!
//! * input:  `[N, C_in, H, W]`
//! * weight: `[C_out, C_in, KH, KW]`
//! * output: `[N, C_out, H_out, W_out]`

use crate::{ops, Tensor};
use mri_sync::pool;

/// Minimum element count before the im2col/col2im/depthwise loops dispatch
/// to the worker pool; below it the per-job overhead beats the win.
const PAR_MIN_ELEMS: usize = 1 << 16;

/// Shared dispatch policy for the unfold/fold/depthwise kernels: pool when
/// extra lanes exist, there are at least two independent units (channels,
/// batch images) to hand out, and the touched element count amortises
/// dispatch overhead.
fn use_pool(units: usize, elems: usize) -> bool {
    pool::lanes() > 1 && units >= 2 && elems > PAR_MIN_ELEMS
}

/// Static configuration of one 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dCfg {
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Vertical and horizontal stride.
    pub stride: (usize, usize),
    /// Zero padding added to each side (top/bottom, left/right).
    pub padding: (usize, usize),
}

impl Conv2dCfg {
    /// Square kernel with stride 1 and "same" padding for odd kernels.
    pub fn same(kernel: usize) -> Self {
        Conv2dCfg {
            kernel: (kernel, kernel),
            stride: (1, 1),
            padding: (kernel / 2, kernel / 2),
        }
    }

    /// Square kernel, explicit stride and padding.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dCfg {
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (padding, padding),
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    // analyze: allow(panic, the fit assert is the documented admission check
    // and FrozenModel::freeze rejects zero strides before this ever runs on
    // the serving path)
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        assert!(
            h + 2 * ph >= kh && w + 2 * pw >= kw,
            "kernel larger than padded input"
        );
        ((h + 2 * ph - kh) / sh + 1, (w + 2 * pw - kw) / sw + 1)
    }
}

/// Unfolds an input batch into the `im2col` matrix of shape
/// `[C_in·KH·KW, N·H_out·W_out]`.
///
/// Every column holds the receptive field of one output position, so the
/// convolution becomes a single matrix product with the flattened weights.
///
/// # Panics
///
/// Panics if `input` is not rank 4.
pub fn im2col(input: &Tensor, cfg: Conv2dCfg) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "im2col expects [N, C, H, W]");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (kh, kw) = cfg.kernel;
    let (ho, wo) = cfg.out_size(h, w);

    let rows = c * kh * kw;
    let cols = n * ho * wo;
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(input.data(), (n, c, h, w), cfg, &mut out);
    Tensor::from_vec(out, &[rows, cols])
}

/// [`im2col`] into a caller-provided buffer of length
/// `C·KH·KW · N·H_out·W_out` — the allocation-free variant serving engines
/// reuse across calls. The buffer is zeroed first (padding positions rely on
/// it), then filled exactly as [`im2col`] would, including the pool dispatch,
/// so the results are bit-identical.
///
/// # Panics
///
/// Panics if `data` or `out` do not match the geometry.
// analyze: allow(panic, both buffer lengths are asserted against the
// geometry on entry and the channel blocks partition the output exactly)
pub fn im2col_into(
    data: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    cfg: Conv2dCfg,
    out: &mut [f32],
) {
    let (kh, kw) = cfg.kernel;
    let (ho, wo) = cfg.out_size(h, w);
    let rows = c * kh * kw;
    let cols = n * ho * wo;
    assert_eq!(data.len(), n * c * h * w, "im2col input length mismatch");
    assert_eq!(out.len(), rows * cols, "im2col output length mismatch");
    out.fill(0.0);

    // The kh·kw rows of one input channel form one contiguous block of the
    // output, so channels are natural disjoint pool jobs.
    let per_ci = kh * kw * cols;
    if use_pool(c, rows * cols) {
        // Job panics propagate out of `scope` after the group drains.
        pool::scope(|s| {
            for (ci, block) in out.chunks_mut(per_ci).enumerate() {
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.im2col.chunk");
                    im2col_channel(data, block, ci, (n, c, h, w), (ho, wo), cfg);
                });
            }
        });
    } else {
        for (ci, block) in out.chunks_mut(per_ci.max(1)).enumerate() {
            im2col_channel(data, block, ci, (n, c, h, w), (ho, wo), cfg);
        }
    }
}

/// Unfolds input channel `ci` into its `kh·kw` rows of the im2col matrix
/// (`block`), for the whole batch.
// analyze: allow(panic, source and destination offsets stay inside the
// asserted geometry of the caller -- receptive-field windows are clipped to
// the padded input before any index forms)
fn im2col_channel(
    data: &[f32],
    block: &mut [f32],
    ci: usize,
    (n, c, h, w): (usize, usize, usize, usize),
    (ho, wo): (usize, usize),
    cfg: Conv2dCfg,
) {
    let (kh, kw) = cfg.kernel;
    let (sh, sw) = cfg.stride;
    let (ph, pw) = cfg.padding;
    let cols = n * ho * wo;
    for ki in 0..kh {
        for kj in 0..kw {
            let row = ki * kw + kj;
            let out_row = &mut block[row * cols..(row + 1) * cols];
            for b in 0..n {
                let img = &data[(b * c + ci) * h * w..(b * c + ci + 1) * h * w];
                for oy in 0..ho {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = &img[iy as usize * w..(iy as usize + 1) * w];
                    let dst = &mut out_row[(b * ho + oy) * wo..(b * ho + oy + 1) * wo];
                    if sw == 1 {
                        // Unit stride: the in-bounds ox range
                        // (ix = ox + kj - pw ∈ [0, w)) is one contiguous
                        // run on both sides — a straight copy; the padded
                        // remainder keeps its pre-zeroed value exactly as
                        // the per-element loop would leave it.
                        let lo = pw.saturating_sub(kj);
                        let hi = (w + pw).saturating_sub(kj).min(wo);
                        if lo < hi {
                            let src0 = lo + kj - pw;
                            dst[lo..hi].copy_from_slice(&src_row[src0..src0 + (hi - lo)]);
                        }
                    } else {
                        for ox in 0..wo {
                            let ix = (ox * sw + kj) as isize - pw as isize;
                            if ix >= 0 && ix < w as isize {
                                dst[ox] = src_row[ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Folds an `im2col` matrix back onto the input, accumulating overlaps.
///
/// This is the adjoint of [`im2col`] and is used for the data gradient.
///
/// # Panics
///
/// Panics if `cols` does not have the shape `im2col` would have produced for
/// an input of shape `[n, c, h, w]` under `cfg`.
pub fn col2im(cols: &Tensor, n: usize, c: usize, h: usize, w: usize, cfg: Conv2dCfg) -> Tensor {
    let (kh, kw) = cfg.kernel;
    let (ho, wo) = cfg.out_size(h, w);
    assert_eq!(
        cols.dims(),
        &[c * kh * kw, n * ho * wo],
        "col2im shape mismatch"
    );

    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();

    // Batch images are contiguous `c·h·w` blocks of the output and overlap
    // accumulation never crosses them, so they are the pool's disjoint
    // units. Within one image the (ci, ki, kj, oy, ox) walk matches the
    // old ci-outer nest element-for-element — each gradient pixel belongs
    // to exactly one (b, ci) image, so hoisting `b` outermost reorders
    // nothing within any element's accumulation chain.
    let per_b = c * h * w;
    if use_pool(n, c * kh * kw * n * ho * wo) {
        // Job panics propagate out of `scope` after the group drains.
        pool::scope(|s| {
            for (b, img_block) in out.chunks_mut(per_b).enumerate() {
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.col2im.chunk");
                    col2im_batch(data, img_block, b, (n, c, h, w), (ho, wo), cfg);
                });
            }
        });
    } else {
        for (b, img_block) in out.chunks_mut(per_b.max(1)).enumerate() {
            col2im_batch(data, img_block, b, (n, c, h, w), (ho, wo), cfg);
        }
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

/// Folds batch image `b`'s gradient columns back onto `img_block`
/// (`[c, h, w]`), accumulating receptive-field overlaps.
fn col2im_batch(
    data: &[f32],
    img_block: &mut [f32],
    b: usize,
    (n, c, h, w): (usize, usize, usize, usize),
    (ho, wo): (usize, usize),
    cfg: Conv2dCfg,
) {
    let (kh, kw) = cfg.kernel;
    let (sh, sw) = cfg.stride;
    let (ph, pw) = cfg.padding;
    let width = n * ho * wo;
    for ci in 0..c {
        let img = &mut img_block[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let src_row = &data[row * width..(row + 1) * width];
                for oy in 0..ho {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src = &src_row[(b * ho + oy) * wo..(b * ho + oy + 1) * wo];
                    if sw == 1 {
                        // Unit stride: the in-bounds ox range is contiguous
                        // on both sides (see `im2col_channel`); adds still
                        // run in ascending-ox order, each gradient pixel
                        // touched at most once per (ki, kj, oy), so the
                        // accumulation order is unchanged.
                        let lo = pw.saturating_sub(kj);
                        let hi = (w + pw).saturating_sub(kj).min(wo);
                        if lo < hi {
                            let base = iy as usize * w + lo + kj - pw;
                            let dst = &mut img[base..base + (hi - lo)];
                            for (d, &s) in dst.iter_mut().zip(&src[lo..hi]) {
                                *d += s;
                            }
                        }
                    } else {
                        for ox in 0..wo {
                            let ix = (ox * sw + kj) as isize - pw as isize;
                            if ix >= 0 && ix < w as isize {
                                img[iy as usize * w + ix as usize] += src[ox];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// Returns both the output `[N, C_out, H_out, W_out]` and the `im2col`
/// matrix, which callers typically keep for the backward pass
/// (C-INTERMEDIATE).
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, cfg: Conv2dCfg) -> (Tensor, Tensor) {
    let _prof = mri_telemetry::prof_scope!("tensor.conv2d_forward");
    assert_eq!(input.shape().rank(), 4, "conv2d input must be [N, C, H, W]");
    assert_eq!(
        weight.shape().rank(),
        4,
        "conv2d weight must be [O, C, KH, KW]"
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (o, wc, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    assert_eq!(c, wc, "channel mismatch: input {c} vs weight {wc}");
    assert_eq!((kh, kw), cfg.kernel, "weight kernel does not match cfg");
    let (ho, wo) = cfg.out_size(h, w);

    let cols = im2col(input, cfg);
    let w2 = weight.reshape(&[o, c * kh * kw]);
    // [O, CKK] x [CKK, N*Ho*Wo] = [O, N*Ho*Wo]
    let prod = ops::matmul(&w2, &cols);
    (gemm_to_nchw(&prod, n, ho, wo), cols)
}

/// Rearranges an im2col GEMM product `[O, N·H_out·W_out]` into the NCHW
/// output `[N, O, H_out, W_out]` — the tail of [`conv2d_forward`], exposed
/// so alternative GEMM producers (e.g. term-native packed kernels) can share
/// the exact same placement.
///
/// # Panics
///
/// Panics if `prod` is not rank 2 or its column count is not `n · ho · wo`.
pub fn gemm_to_nchw(prod: &Tensor, n: usize, ho: usize, wo: usize) -> Tensor {
    assert_eq!(prod.shape().rank(), 2, "gemm_to_nchw expects [O, N*Ho*Wo]");
    let o = prod.dim(0);
    assert_eq!(prod.dim(1), n * ho * wo, "gemm_to_nchw column mismatch");
    let mut out = vec![0.0f32; n * o * ho * wo];
    gemm_to_nchw_into(prod.data(), o, n, ho, wo, &mut out);
    Tensor::from_vec(out, &[n, o, ho, wo])
}

/// [`gemm_to_nchw`] on raw slices into a caller-provided buffer — the
/// allocation-free variant for engines that keep activations in reusable
/// arenas. Every output element is written, so `out` needs no zeroing.
///
/// # Panics
///
/// Panics if `prod` is not `o · n·ho·wo` long or `out` does not match.
// analyze: allow(panic, both lengths are asserted on entry and the transpose
// indices enumerate exactly that product space)
pub fn gemm_to_nchw_into(prod: &[f32], o: usize, n: usize, ho: usize, wo: usize, out: &mut [f32]) {
    let hw = ho * wo;
    assert_eq!(prod.len(), o * n * hw, "gemm_to_nchw product mismatch");
    assert_eq!(out.len(), n * o * hw, "gemm_to_nchw output mismatch");
    for oi in 0..o {
        for b in 0..n {
            let src = &prod[(oi * n + b) * hw..(oi * n + b + 1) * hw];
            let dst = &mut out[(b * o + oi) * hw..(b * o + oi + 1) * hw];
            dst.copy_from_slice(src);
        }
    }
}

/// Backward 2-D convolution.
///
/// Given the upstream gradient `[N, C_out, H_out, W_out]`, the saved
/// `im2col` matrix and the weights, returns `(grad_input, grad_weight)`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_backward(
    grad_out: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    input_dims: (usize, usize, usize, usize),
    cfg: Conv2dCfg,
) -> (Tensor, Tensor) {
    let _prof = mri_telemetry::prof_scope!("tensor.conv2d_backward");
    let (n, c, h, w) = input_dims;
    let (o, _, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    let (ho, wo) = cfg.out_size(h, w);
    assert_eq!(grad_out.dims(), &[n, o, ho, wo], "grad_out shape mismatch");

    // Rearrange grad [N, O, Ho, Wo] -> [O, N*Ho*Wo].
    let hw = ho * wo;
    let mut g = vec![0.0f32; o * n * hw];
    let gd = grad_out.data();
    for b in 0..n {
        for oi in 0..o {
            let src = &gd[(b * o + oi) * hw..(b * o + oi + 1) * hw];
            let dst = &mut g[(oi * n + b) * hw..(oi * n + b + 1) * hw];
            dst.copy_from_slice(src);
        }
    }
    let g = Tensor::from_vec(g, &[o, n * hw]);

    // grad_weight = g x colsᵀ : [O, CKK]
    let gw = ops::matmul_bt(&g, cols).reshape_into(&[o, c, kh, kw]);

    // grad_cols = Wᵀ x g : [CKK, N*Ho*Wo]
    let w2 = weight.reshape(&[o, c * kh * kw]);
    let gcols = ops::matmul_at(&w2, &g);
    let gx = col2im(&gcols, n, c, h, w, cfg);
    (gx, gw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    /// Direct convolution used as the oracle.
    fn conv_naive(input: &Tensor, weight: &Tensor, cfg: Conv2dCfg) -> Tensor {
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let (o, _, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
        let (ho, wo) = cfg.out_size(h, w);
        let mut out = Tensor::zeros(&[n, o, ho, wo]);
        for b in 0..n {
            for oi in 0..o {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let iy =
                                        (oy * cfg.stride.0 + ki) as isize - cfg.padding.0 as isize;
                                    let ix =
                                        (ox * cfg.stride.1 + kj) as isize - cfg.padding.1 as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        acc += input.at(&[b, ci, iy as usize, ix as usize])
                                            * weight.at(&[oi, ci, ki, kj]);
                                    }
                                }
                            }
                        }
                        *out.at_mut(&[b, oi, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    fn arange(n: usize) -> Vec<f32> {
        (0..n)
            .map(|x| (x as f32) * 0.1 - (n as f32) * 0.05)
            .collect()
    }

    #[test]
    fn out_size_examples() {
        assert_eq!(Conv2dCfg::same(3).out_size(8, 8), (8, 8));
        assert_eq!(Conv2dCfg::new(3, 2, 1).out_size(8, 8), (4, 4));
        assert_eq!(Conv2dCfg::new(1, 1, 0).out_size(5, 7), (5, 7));
    }

    #[test]
    fn forward_matches_naive_same_padding() {
        let cfg = Conv2dCfg::same(3);
        let input = Tensor::from_vec(arange(2 * 3 * 6 * 6), &[2, 3, 6, 6]);
        let weight = Tensor::from_vec(arange(4 * 3 * 3 * 3), &[4, 3, 3, 3]);
        let (out, _) = conv2d_forward(&input, &weight, cfg);
        assert_close(out.data(), conv_naive(&input, &weight, cfg).data(), 1e-3);
    }

    #[test]
    fn forward_matches_naive_strided() {
        let cfg = Conv2dCfg::new(3, 2, 1);
        let input = Tensor::from_vec(arange(2 * 7 * 7), &[1, 2, 7, 7]);
        let weight = Tensor::from_vec(arange(3 * 2 * 3 * 3), &[3, 2, 3, 3]);
        let (out, _) = conv2d_forward(&input, &weight, cfg);
        assert_close(out.data(), conv_naive(&input, &weight, cfg).data(), 1e-3);
    }

    #[test]
    fn forward_1x1_is_channel_mix() {
        let cfg = Conv2dCfg::new(1, 1, 0);
        let input = Tensor::from_vec(arange(2 * 2 * 2), &[1, 2, 2, 2]);
        let weight = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5], &[2, 2, 1, 1]);
        let (out, _) = conv2d_forward(&input, &weight, cfg);
        assert_close(out.data(), conv_naive(&input, &weight, cfg).data(), 1e-5);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is what backprop relies on.
        let cfg = Conv2dCfg::new(3, 2, 1);
        let (n, c, h, w) = (1, 2, 5, 5);
        let x = Tensor::from_vec(arange(n * c * h * w), &[n, c, h, w]);
        let cols = im2col(&x, cfg);
        let y = Tensor::from_vec(arange(cols.len()), cols.dims());
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, n, c, h, w, cfg);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let cfg = Conv2dCfg::same(3);
        let (n, c, h, w) = (1, 2, 4, 4);
        let input = Tensor::from_vec(arange(n * c * h * w), &[n, c, h, w]);
        let weight = Tensor::from_vec(arange(2 * c * 9), &[2, c, 3, 3]);

        let loss = |inp: &Tensor, wt: &Tensor| -> f32 {
            let (out, _) = conv2d_forward(inp, wt, cfg);
            out.data().iter().map(|v| v * v).sum::<f32>() * 0.5
        };

        let (out, cols) = conv2d_forward(&input, &weight, cfg);
        let grad_out = out.clone(); // d(0.5*sum(y^2))/dy = y
        let (gx, gw) = conv2d_backward(&grad_out, &cols, &weight, (n, c, h, w), cfg);

        let eps = 1e-2;
        for idx in [0usize, 5, 13, 31] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (loss(&ip, &weight) - loss(&im, &weight)) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "input grad {idx}: fd {num} vs analytic {}",
                gx.data()[idx]
            );
        }
        for idx in [0usize, 7, 17] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&input, &wp) - loss(&input, &wm)) / (2.0 * eps);
            assert!(
                (num - gw.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "weight grad {idx}: fd {num} vs analytic {}",
                gw.data()[idx]
            );
        }
    }
}

/// Forward depthwise 2-D convolution: each input channel is convolved with
/// its own single filter (`groups == C`), the core of MobileNet-style
/// inverted residual blocks.
///
/// * input:  `[N, C, H, W]`
/// * weight: `[C, KH, KW]`
/// * output: `[N, C, H_out, W_out]`
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn depthwise_forward(input: &Tensor, weight: &Tensor, cfg: Conv2dCfg) -> Tensor {
    let _prof = mri_telemetry::prof_scope!("tensor.depthwise_forward");
    assert_eq!(
        input.shape().rank(),
        4,
        "depthwise input must be [N, C, H, W]"
    );
    assert_eq!(
        weight.shape().rank(),
        3,
        "depthwise weight must be [C, KH, KW]"
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert_eq!(weight.dim(0), c, "depthwise channel mismatch");
    assert_eq!(
        (weight.dim(1), weight.dim(2)),
        cfg.kernel,
        "weight kernel does not match cfg"
    );
    let (kh, kw) = cfg.kernel;
    let (ho, wo) = cfg.out_size(h, w);

    let mut out = vec![0.0f32; n * c * ho * wo];
    let data = input.data();
    let wd = weight.data();
    // Each (batch, channel) output plane is independent; hand the pool
    // fixed groups of DW_GRAIN planes.
    const DW_GRAIN: usize = 4;
    if use_pool(n * c, n * c * ho * wo * kh * kw) {
        // Job panics propagate out of `scope` after the group drains.
        pool::scope(|s| {
            for (t, planes) in out.chunks_mut(DW_GRAIN * ho * wo).enumerate() {
                s.spawn(move || {
                    let _chunk_prof = mri_telemetry::prof_scope!("tensor.depthwise.chunk");
                    for (u, dst) in planes.chunks_mut(ho * wo).enumerate() {
                        let bc = t * DW_GRAIN + u;
                        let (b, ci) = (bc / c, bc % c);
                        let img = &data[(b * c + ci) * h * w..(b * c + ci + 1) * h * w];
                        let ker = &wd[ci * kh * kw..(ci + 1) * kh * kw];
                        depthwise_channel(img, ker, dst, (h, w), (ho, wo), cfg);
                    }
                });
            }
        });
    } else {
        for b in 0..n {
            for ci in 0..c {
                let img = &data[(b * c + ci) * h * w..(b * c + ci + 1) * h * w];
                let ker = &wd[ci * kh * kw..(ci + 1) * kh * kw];
                let dst = &mut out[(b * c + ci) * ho * wo..(b * c + ci + 1) * ho * wo];
                depthwise_channel(img, ker, dst, (h, w), (ho, wo), cfg);
            }
        }
    }
    Tensor::from_vec(out, &[n, c, ho, wo])
}

/// One channel of [`depthwise_forward`]: convolves `img` (`h × w`) with
/// `ker` (`kh × kw`) into `dst` (`ho × wo`).
// analyze: allow(panic, tap positions are range-checked against the padded
// image before indexing and dst spans exactly ho times wo by the caller's
// asserts)
fn depthwise_channel(
    img: &[f32],
    ker: &[f32],
    dst: &mut [f32],
    (h, w): (usize, usize),
    (ho, wo): (usize, usize),
    cfg: Conv2dCfg,
) {
    let (kh, kw) = cfg.kernel;
    let (sh, sw) = cfg.stride;
    let (ph, pw) = cfg.padding;
    for oy in 0..ho {
        for ox in 0..wo {
            let mut acc = 0.0f32;
            for ky in 0..kh {
                let iy = (oy * sh + ky) as isize - ph as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for kx in 0..kw {
                    let ix = (ox * sw + kx) as isize - pw as isize;
                    if ix >= 0 && ix < w as isize {
                        acc += img[iy as usize * w + ix as usize] * ker[ky * kw + kx];
                    }
                }
            }
            dst[oy * wo + ox] = acc;
        }
    }
}

/// [`depthwise_forward`] with the filters supplied per channel instead of as
/// one `[C, KH, KW]` tensor: `fill(ci, buf)` must write channel `ci`'s
/// `kh·kw` filter taps into `buf`. Each channel's filter is requested exactly
/// once and applied across the whole batch, so a producer that decodes
/// filters from a packed term store never materialises the full weight
/// tensor. Output placement and per-pixel accumulation order match
/// [`depthwise_forward`] exactly.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn depthwise_forward_with(
    input: &Tensor,
    channels: usize,
    cfg: Conv2dCfg,
    fill: impl FnMut(usize, &mut [f32]),
) -> Tensor {
    assert_eq!(
        input.shape().rank(),
        4,
        "depthwise input must be [N, C, H, W]"
    );
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert_eq!(channels, c, "depthwise channel mismatch");
    let (kh, kw) = cfg.kernel;
    let (ho, wo) = cfg.out_size(h, w);

    let mut out = vec![0.0f32; n * c * ho * wo];
    let mut ker = vec![0.0f32; kh * kw];
    depthwise_forward_with_into(input.data(), (n, c, h, w), cfg, &mut ker, &mut out, fill);
    Tensor::from_vec(out, &[n, c, ho, wo])
}

/// [`depthwise_forward_with`] on raw slices into caller-provided buffers —
/// `ker` is the `KH·KW` filter scratch and `out` the `N·C·H_out·W_out`
/// output. Every output element is written, so `out` needs no zeroing; the
/// per-pixel accumulation order matches [`depthwise_forward`] exactly.
///
/// # Panics
///
/// Panics if the slice lengths do not match the geometry.
// analyze: allow(panic, all three buffer lengths are asserted against the
// geometry on entry and the per-plane windows tile them exactly)
pub fn depthwise_forward_with_into(
    data: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    cfg: Conv2dCfg,
    ker: &mut [f32],
    out: &mut [f32],
    mut fill: impl FnMut(usize, &mut [f32]),
) {
    let _prof = mri_telemetry::prof_scope!("tensor.depthwise_forward");
    let (kh, kw) = cfg.kernel;
    let (ho, wo) = cfg.out_size(h, w);
    assert_eq!(data.len(), n * c * h * w, "depthwise input length mismatch");
    assert_eq!(ker.len(), kh * kw, "depthwise filter scratch mismatch");
    assert_eq!(out.len(), n * c * ho * wo, "depthwise output mismatch");
    for ci in 0..c {
        fill(ci, ker);
        for b in 0..n {
            let img = &data[(b * c + ci) * h * w..(b * c + ci + 1) * h * w];
            let dst = &mut out[(b * c + ci) * ho * wo..(b * c + ci + 1) * ho * wo];
            depthwise_channel(img, ker, dst, (h, w), (ho, wo), cfg);
        }
    }
}

/// Backward depthwise convolution: returns `(grad_input, grad_weight)`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn depthwise_backward(
    grad_out: &Tensor,
    input: &Tensor,
    weight: &Tensor,
    cfg: Conv2dCfg,
) -> (Tensor, Tensor) {
    let _prof = mri_telemetry::prof_scope!("tensor.depthwise_backward");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (kh, kw) = cfg.kernel;
    let (sh, sw) = cfg.stride;
    let (ph, pw) = cfg.padding;
    let (ho, wo) = cfg.out_size(h, w);
    assert_eq!(grad_out.dims(), &[n, c, ho, wo], "grad_out shape mismatch");

    let mut gx = vec![0.0f32; n * c * h * w];
    let mut gw = vec![0.0f32; c * kh * kw];
    let data = input.data();
    let wd = weight.data();
    let gd = grad_out.data();
    for b in 0..n {
        for ci in 0..c {
            let img = &data[(b * c + ci) * h * w..(b * c + ci + 1) * h * w];
            let ker = &wd[ci * kh * kw..(ci + 1) * kh * kw];
            let g = &gd[(b * c + ci) * ho * wo..(b * c + ci + 1) * ho * wo];
            let gimg = &mut gx[(b * c + ci) * h * w..(b * c + ci + 1) * h * w];
            let gker = &mut gw[ci * kh * kw..(ci + 1) * kh * kw];
            for oy in 0..ho {
                for ox in 0..wo {
                    let go = g[oy * wo + ox];
                    if go == 0.0 {
                        continue;
                    }
                    for ky in 0..kh {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if ix >= 0 && ix < w as isize {
                                let ii = iy as usize * w + ix as usize;
                                gimg[ii] += go * ker[ky * kw + kx];
                                gker[ky * kw + kx] += go * img[ii];
                            }
                        }
                    }
                }
            }
        }
    }
    (
        Tensor::from_vec(gx, &[n, c, h, w]),
        Tensor::from_vec(gw, &[c, kh, kw]),
    )
}

#[cfg(test)]
mod depthwise_tests {
    use super::*;

    fn arange(n: usize) -> Vec<f32> {
        (0..n)
            .map(|x| (x as f32) * 0.1 - (n as f32) * 0.05)
            .collect()
    }

    #[test]
    fn depthwise_equals_grouped_full_conv() {
        // A depthwise conv is a full conv whose weight is block-diagonal:
        // out channel c uses only input channel c.
        let cfg = Conv2dCfg::same(3);
        let (n, c, h, w) = (2, 3, 5, 5);
        let input = Tensor::from_vec(arange(n * c * h * w), &[n, c, h, w]);
        let dw_weight = Tensor::from_vec(arange(c * 9), &[c, 3, 3]);
        let out = depthwise_forward(&input, &dw_weight, cfg);

        let mut full = Tensor::zeros(&[c, c, 3, 3]);
        for ci in 0..c {
            for k in 0..9 {
                full.data_mut()[(ci * c + ci) * 9 + k] = dw_weight.data()[ci * 9 + k];
            }
        }
        let (expect, _) = conv2d_forward(&input, &full, cfg);
        crate::assert_close(out.data(), expect.data(), 1e-4);
    }

    #[test]
    fn depthwise_strided_shapes() {
        let cfg = Conv2dCfg::new(3, 2, 1);
        let input = Tensor::from_vec(arange(2 * 7 * 7), &[1, 2, 7, 7]);
        let weight = Tensor::from_vec(arange(2 * 9), &[2, 3, 3]);
        let out = depthwise_forward(&input, &weight, cfg);
        assert_eq!(out.dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn depthwise_backward_matches_finite_differences() {
        let cfg = Conv2dCfg::same(3);
        let (n, c, h, w) = (1, 2, 4, 4);
        let input = Tensor::from_vec(arange(n * c * h * w), &[n, c, h, w]);
        let weight = Tensor::from_vec(arange(c * 9), &[c, 3, 3]);
        let loss = |inp: &Tensor, wt: &Tensor| -> f32 {
            depthwise_forward(inp, wt, cfg)
                .data()
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                * 0.5
        };
        let out = depthwise_forward(&input, &weight, cfg);
        let (gx, gw) = depthwise_backward(&out, &input, &weight, cfg);
        let eps = 1e-2;
        for idx in [0usize, 7, 19, 31] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (loss(&ip, &weight) - loss(&im, &weight)) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "input grad {idx}: fd {num} vs {}",
                gx.data()[idx]
            );
        }
        for idx in [0usize, 8, 17] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&input, &wp) - loss(&input, &wm)) / (2.0 * eps);
            assert!(
                (num - gw.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "weight grad {idx}: fd {num} vs {}",
                gw.data()[idx]
            );
        }
    }
}
