//! Binary encodings: unsigned binary, non-adjacent form and Booth recoding.
//!
//! A value's *resolution* in this paper is the number of nonzero
//! power-of-two terms in its encoding, so the choice of encoding directly
//! determines computation cost. The non-adjacent form (NAF) attains the
//! minimum possible number of nonzero signed digits, which is why the paper
//! uses signed-digit representations throughout (§2.4).

use crate::Term;
use serde::{Deserialize, Serialize};

/// Which binary encoding to expand values into before term quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SdrEncoding {
    /// Unsigned binary representation of the magnitude; every term carries
    /// the value's sign. Matches the paper's Fig. 2/4 illustrations.
    Unsigned,
    /// Non-adjacent form: signed digits in `{-1, 0, 1}` with no two adjacent
    /// nonzeros; provably minimal in nonzero-digit count.
    #[default]
    Naf,
    /// Radix-2 Booth recoding: signed digits derived from adjacent bit pairs.
    /// Not always minimal, but hardware-friendly; included because the
    /// Laconic PE baseline (§7.2) assumes Booth-encoded operands.
    Booth,
    /// Radix-4 (modified) Booth recoding: digits in `{-2, -1, 0, 1, 2}` over
    /// bit triples, guaranteeing at most `⌈(n+1)/2⌉` nonzero terms for an
    /// `n`-bit value — the bound multiplier hardware traditionally exploits.
    Booth4,
}

/// Encodes a signed integer into terms under the chosen encoding.
///
/// Terms are returned sorted by exponent, **descending** (most significant
/// first) — the order in which term quantization keeps them.
///
/// # Examples
///
/// ```
/// use mri_quant::{sdr, SdrEncoding, Term};
///
/// // 27 = 11011₂ needs 4 terms unsigned but only 3 in NAF (paper §2.4).
/// assert_eq!(sdr::encode(27, SdrEncoding::Unsigned).len(), 4);
/// assert_eq!(
///     sdr::encode(27, SdrEncoding::Naf),
///     vec![Term::pos(5), Term::neg(2), Term::neg(0)],
/// );
/// ```
pub fn encode(value: i64, encoding: SdrEncoding) -> Vec<Term> {
    match encoding {
        SdrEncoding::Unsigned => encode_unsigned(value),
        SdrEncoding::Naf => encode_naf(value),
        SdrEncoding::Booth => encode_booth(value),
        SdrEncoding::Booth4 => encode_booth4(value),
    }
}

/// Decodes a term slice back into its integer value.
pub fn decode(terms: &[Term]) -> i64 {
    crate::term_sum(terms)
}

/// Unsigned binary expansion of `|value|`, each term signed by `sign(value)`.
fn encode_unsigned(value: i64) -> Vec<Term> {
    let negative = value < 0;
    let mut mag = value.unsigned_abs();
    let mut terms = Vec::new();
    while mag != 0 {
        let e = 63 - mag.leading_zeros() as u8;
        terms.push(Term {
            exponent: e,
            negative,
        });
        mag &= !(1u64 << e);
    }
    terms
}

/// Non-adjacent form: the canonical minimal signed-digit representation.
///
/// Produced low-to-high with the classic `2 - (n mod 4)` rule, then reversed
/// so the most significant term comes first.
fn encode_naf(value: i64) -> Vec<Term> {
    let mut n = i128::from(value);
    let mut e: u8 = 0;
    let mut terms = Vec::new();
    while n != 0 {
        if n & 1 != 0 {
            // z in {-1, +1} chosen so (n - z) is divisible by 4.
            let z = 2 - (n.rem_euclid(4)) as i64;
            terms.push(Term {
                exponent: e,
                negative: z < 0,
            });
            n -= i128::from(z);
        }
        n >>= 1;
        e += 1;
    }
    terms.reverse();
    terms
}

/// Radix-2 Booth recoding: digit `d_i = b_{i-1} - b_i` over the two's
/// complement bits (with `b_{-1} = 0`).
fn encode_booth(value: i64) -> Vec<Term> {
    let bits = value as u64;
    let mut terms = Vec::new();
    let mut prev = 0u64;
    for i in 0..64u32 {
        let cur = (bits >> i) & 1;
        match (cur, prev) {
            (1, 0) => terms.push(Term {
                exponent: i as u8,
                negative: true,
            }),
            (0, 1) => terms.push(Term {
                exponent: i as u8,
                negative: false,
            }),
            _ => {}
        }
        prev = cur;
    }
    // For non-negative values the implicit sign bit contributes nothing;
    // for negative values the sign extension is all-ones and also terminates.
    if prev == 1 && value > 0 {
        // Unreachable for i64 inputs below 2^63, kept for clarity.
        terms.push(Term {
            exponent: 63,
            negative: false,
        });
    }
    terms.reverse();
    terms
}

/// Radix-4 modified Booth: digit `d_i = b_{2i-1} + b_{2i} - 2·b_{2i+1}`
/// (with `b_{-1} = 0`), each nonzero digit contributing one term `±2^{2i}`
/// or `±2^{2i+1}`.
fn encode_booth4(value: i64) -> Vec<Term> {
    let bits = value as u64;
    let bit = |i: i64| -> i64 {
        if i < 0 {
            0
        } else if i >= 64 {
            // Sign extension for negative values.
            i64::from(value < 0)
        } else {
            (bits >> i & 1) as i64
        }
    };
    let mut terms = Vec::new();
    let mut i = 0i64;
    while i < 66 {
        let d = bit(i - 1) + bit(i) - 2 * bit(i + 1);
        match d {
            1 => terms.push(Term {
                exponent: i as u8,
                negative: false,
            }),
            -1 => terms.push(Term {
                exponent: i as u8,
                negative: true,
            }),
            2 => terms.push(Term {
                exponent: (i + 1) as u8,
                negative: false,
            }),
            -2 => terms.push(Term {
                exponent: (i + 1) as u8,
                negative: true,
            }),
            _ => {}
        }
        i += 2;
    }
    terms.reverse();
    terms
}

/// Number of nonzero terms `value` needs under `encoding`.
pub fn term_count(value: i64, encoding: SdrEncoding) -> usize {
    encode(value, encoding).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_encoding_matches_binary() {
        assert_eq!(
            encode(21, SdrEncoding::Unsigned),
            vec![Term::pos(4), Term::pos(2), Term::pos(0)]
        );
        assert_eq!(encode(0, SdrEncoding::Unsigned), vec![]);
        assert_eq!(
            encode(-6, SdrEncoding::Unsigned),
            vec![Term::neg(2), Term::neg(1)]
        );
    }

    #[test]
    fn naf_paper_example_27() {
        // 27 (11011, four nonzero digits) -> 100-10-1 (three nonzero digits).
        let t = encode(27, SdrEncoding::Naf);
        assert_eq!(t, vec![Term::pos(5), Term::neg(2), Term::neg(0)]);
        assert_eq!(decode(&t), 27);
    }

    #[test]
    fn naf_is_nonadjacent() {
        for v in -500..=500i64 {
            let t = encode(v, SdrEncoding::Naf);
            for w in t.windows(2) {
                assert!(
                    w[0].exponent >= w[1].exponent + 2,
                    "adjacent nonzero digits in NAF of {v}: {w:?}"
                );
            }
        }
    }

    #[test]
    fn all_encodings_round_trip() {
        for v in -1000..=1000i64 {
            for enc in [
                SdrEncoding::Unsigned,
                SdrEncoding::Naf,
                SdrEncoding::Booth,
                SdrEncoding::Booth4,
            ] {
                assert_eq!(
                    decode(&encode(v, enc)),
                    v,
                    "round trip failed for {v} under {enc:?}"
                );
            }
        }
    }

    #[test]
    fn naf_never_needs_more_terms_than_unsigned() {
        for v in 0..=2000i64 {
            assert!(
                term_count(v, SdrEncoding::Naf) <= term_count(v, SdrEncoding::Unsigned),
                "NAF worse than UBR for {v}"
            );
        }
    }

    #[test]
    fn naf_minimality_small_values() {
        // Brute-force the minimum number of signed power-of-two terms needed
        // to express each value with exponents <= 10, and check NAF attains it.
        fn min_terms(v: i64) -> usize {
            // BFS over term counts.
            for k in 0..=6usize {
                if can_express(v, k, 11) {
                    return k;
                }
            }
            usize::MAX
        }
        fn can_express(v: i64, k: usize, max_exp: u8) -> bool {
            if k == 0 {
                return v == 0;
            }
            for e in 0..max_exp {
                for s in [1i64, -1] {
                    if can_express(v - s * (1i64 << e), k - 1, max_exp) {
                        return true;
                    }
                }
            }
            false
        }
        for v in [0i64, 1, 3, 7, 11, 23, 27, 31, 93, 171] {
            assert_eq!(
                term_count(v, SdrEncoding::Naf),
                min_terms(v),
                "NAF not minimal for {v}"
            );
        }
    }

    #[test]
    fn booth_compresses_runs_of_ones() {
        // Booth turns a run of k ones into two terms regardless of k.
        assert_eq!(
            encode(31, SdrEncoding::Booth),
            vec![Term::pos(5), Term::neg(0)]
        );
        assert_eq!(
            encode(15, SdrEncoding::Booth),
            vec![Term::pos(4), Term::neg(0)]
        );
    }

    #[test]
    fn naf_of_5bit_values_needs_at_most_3_terms() {
        // The §7.2 Laconic comparison assumes every 5-bit operand has <= 3
        // signed-digit terms; NAF guarantees that bound.
        for v in -31..=31i64 {
            assert!(
                term_count(v, SdrEncoding::Naf) <= 3,
                "NAF of {v} exceeded 3 terms"
            );
        }
    }

    #[test]
    fn booth4_term_bound() {
        // Radix-4 Booth guarantees at most ceil((n+1)/2) nonzero digits.
        for v in 0..256i64 {
            let t = encode(v, SdrEncoding::Booth4);
            assert!(t.len() <= 5, "Booth4 of 8-bit {v} used {} terms", t.len());
        }
        for v in -16..16i64 {
            let t = encode(v, SdrEncoding::Booth4);
            assert!(t.len() <= 3, "Booth4 of 5-bit {v} used {} terms", t.len());
        }
    }

    #[test]
    fn booth4_examples() {
        // 6 = 8 - 2 under radix-4 recoding (digits: block0 d=-2, block1 d=+... )
        assert_eq!(decode(&encode(6, SdrEncoding::Booth4)), 6);
        // 21 = 16 + 4 + 1: all digits already radix-4 friendly.
        assert_eq!(
            encode(21, SdrEncoding::Booth4),
            vec![Term::pos(4), Term::pos(2), Term::pos(0)]
        );
    }

    #[test]
    fn terms_sorted_most_significant_first() {
        for v in [21i64, 27, 1023, -77] {
            for enc in [
                SdrEncoding::Unsigned,
                SdrEncoding::Naf,
                SdrEncoding::Booth,
                SdrEncoding::Booth4,
            ] {
                let t = encode(v, enc);
                for w in t.windows(2) {
                    assert!(w[0].exponent > w[1].exponent);
                }
            }
        }
    }
}
