//! Packed storage of multi-resolution weight terms (paper §5.4, Figs. 16–18).
//!
//! Every term is stored in 4 bits (3-bit exponent + 1 sign bit); the owning
//! value's position within its group goes to a separate *index memory* using
//! `log2(g)` bits per term. Terms are laid out in *increments* between
//! consecutive sub-model budgets so that a low-resolution sub-model touches
//! only a prefix of the memory entries.

use crate::{GroupTerm, MultiResGroup, Term};
use mri_sync::atomic::{AtomicU64, Ordering};
use std::error::Error;
use std::fmt;

/// Number of bits used to store one term (3-bit exponent + sign).
pub const TERM_BITS: u32 = 4;

/// Largest exponent representable in the packed format.
pub const MAX_PACKED_EXPONENT: u8 = 7;

/// Error converting a term into the packed 4-bit format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackTermError {
    exponent: u8,
}

impl fmt::Display for PackTermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "term exponent {} does not fit the 3-bit packed field (max {})",
            self.exponent, MAX_PACKED_EXPONENT
        )
    }
}

impl Error for PackTermError {}

/// Packs a term into a 4-bit nibble: `[sign | e2 e1 e0]` (Fig. 16(b)).
///
/// # Errors
///
/// Returns [`PackTermError`] if the exponent exceeds
/// [`MAX_PACKED_EXPONENT`].
///
/// # Examples
///
/// ```
/// use mri_quant::{storage, Term};
///
/// assert_eq!(storage::pack_term(Term::pos(4))?, 0b0100);
/// assert_eq!(storage::pack_term(Term::neg(3))?, 0b1011);
/// # Ok::<(), storage::PackTermError>(())
/// ```
pub fn pack_term(t: Term) -> Result<u8, PackTermError> {
    if t.exponent > MAX_PACKED_EXPONENT {
        return Err(PackTermError {
            exponent: t.exponent,
        });
    }
    Ok((u8::from(t.negative) << 3) | t.exponent)
}

/// Unpacks a 4-bit nibble back into a term.
///
/// Only the low 4 bits of `nibble` are examined.
pub fn unpack_term(nibble: u8) -> Term {
    Term {
        exponent: nibble & 0b111,
        negative: nibble & 0b1000 != 0,
    }
}

/// Bits needed to store one group of `g` values at term budget `alpha`:
/// `4α` term bits plus `α · log2(g)` index bits (paper §5.4).
///
/// # Panics
///
/// Panics if `g` is not a power of two.
pub fn storage_bits(g: usize, alpha: usize) -> usize {
    assert!(g.is_power_of_two(), "group size must be a power of two");
    TERM_BITS as usize * alpha + alpha * g.trailing_zeros() as usize
}

/// Average storage bits per weight value at budget `alpha` for group size `g`.
pub fn bits_per_weight(g: usize, alpha: usize) -> f64 {
    storage_bits(g, alpha) as f64 / g as f64
}

/// A word-addressable memory holding packed fields, counting accesses.
///
/// The width models the physical memory port; reading a range of bits costs
/// one access per touched entry. The counter lives on an atomic cell so the
/// whole read path is `&self`: concurrent sub-model loads share one storage
/// without any lock (the bit image itself is immutable after construction).
#[derive(Debug)]
pub struct PackedMemory {
    bits: Vec<bool>,
    entry_bits: usize,
    accesses: AtomicU64,
}

impl Clone for PackedMemory {
    fn clone(&self) -> Self {
        PackedMemory {
            bits: self.bits.clone(),
            entry_bits: self.entry_bits,
            // ordering: Relaxed — the counter is a monotonic statistic with
            // no other memory it publishes; a clone snapshots whatever tally
            // the source has reached.
            accesses: AtomicU64::new(self.accesses.load(Ordering::Relaxed)),
        }
    }
}

impl PackedMemory {
    /// Creates an empty memory with the given entry (port) width in bits.
    ///
    /// # Panics
    ///
    /// Panics if `entry_bits == 0`.
    pub fn new(entry_bits: usize) -> Self {
        assert!(entry_bits > 0, "entry width must be positive");
        PackedMemory {
            bits: Vec::new(),
            entry_bits,
            accesses: AtomicU64::new(0),
        }
    }

    /// Appends a field of `width` bits (little-endian within the field).
    pub fn push_field(&mut self, value: u64, width: usize) {
        for i in 0..width {
            self.bits.push(value >> i & 1 == 1);
        }
    }

    /// Reads a field, counting the memory entries it touches.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_field(&self, bit_offset: usize, width: usize) -> u64 {
        assert!(bit_offset + width <= self.bits.len(), "read out of bounds");
        let first_entry = bit_offset / self.entry_bits;
        let last_entry = if width == 0 {
            first_entry
        } else {
            (bit_offset + width - 1) / self.entry_bits
        };
        // ordering: Relaxed — pure event counting; nothing synchronizes on
        // the tally and the bits being read are immutable.
        self.accesses
            .fetch_add((last_entry - first_entry + 1) as u64, Ordering::Relaxed);
        let mut v = 0u64;
        for i in 0..width {
            if self.bits[bit_offset + i] {
                v |= 1 << i;
            }
        }
        v
    }

    /// Number of entry accesses performed so far.
    pub fn accesses(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, read in isolation.
        self.accesses.load(Ordering::Relaxed)
    }

    /// Resets the access counter.
    pub fn reset_accesses(&self) {
        // ordering: Relaxed — counter reset carries no payload to publish.
        self.accesses.store(0, Ordering::Relaxed);
    }

    /// Total stored bits.
    pub fn len_bits(&self) -> usize {
        self.bits.len()
    }

    /// Total entries occupied (the last may be partial).
    pub fn len_entries(&self) -> usize {
        self.bits.len().div_ceil(self.entry_bits)
    }
}

/// The §5.4 storage layout for one multi-resolution group: a term memory and
/// an index memory, both laid out in budget increments (Fig. 17).
#[derive(Debug, Clone)]
pub struct MultiResStorage {
    term_mem: PackedMemory,
    index_mem: PackedMemory,
    budgets: Vec<usize>,
    group_size: usize,
    index_bits: usize,
    stored_terms: usize,
}

impl MultiResStorage {
    /// Stores a group's term sequence for the given increasing budgets.
    ///
    /// `entry_bits` is the memory port width (the paper uses 16-bit wide
    /// memories storing two two-term increments per entry).
    ///
    /// # Errors
    ///
    /// Returns [`PackTermError`] if any exponent exceeds the packed range.
    ///
    /// # Panics
    ///
    /// Panics if the group size is not a power of two or budgets are not
    /// strictly increasing.
    pub fn store(
        group: &MultiResGroup,
        budgets: &[usize],
        entry_bits: usize,
    ) -> Result<Self, PackTermError> {
        let g = group.group_size();
        assert!(g.is_power_of_two(), "group size must be a power of two");
        let index_bits = g.trailing_zeros() as usize;
        let mut term_mem = PackedMemory::new(entry_bits);
        let mut index_mem = PackedMemory::new(entry_bits);
        let mut stored = 0usize;
        for inc in group.increments(budgets) {
            for gt in inc {
                term_mem.push_field(u64::from(pack_term(gt.term)?), TERM_BITS as usize);
                index_mem.push_field(gt.index as u64, index_bits);
                stored += 1;
            }
        }
        Ok(MultiResStorage {
            term_mem,
            index_mem,
            budgets: budgets.to_vec(),
            group_size: g,
            index_bits,
            stored_terms: stored,
        })
    }

    /// Loads the terms of the sub-model at `budget`, counting memory
    /// accesses on both memories.
    ///
    /// A `budget` beyond the stored maximum is clamped to the full stored
    /// sequence: truncation serving never over-reads, it simply stops at the
    /// end of the term memory. This mirrors the prefix semantics of
    /// [`MultiResSlice::values_at`](crate::MultiResSlice::values_at), where a
    /// larger-than-stored budget also yields the finest stored sub-model.
    pub fn load_budget(&self, budget: usize) -> Vec<GroupTerm> {
        let n = budget.min(self.stored_terms);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let nib = self
                .term_mem
                .read_field(i * TERM_BITS as usize, TERM_BITS as usize) as u8;
            let idx = if self.index_bits == 0 {
                0
            } else {
                self.index_mem
                    .read_field(i * self.index_bits, self.index_bits) as usize
            };
            out.push(GroupTerm::new(unpack_term(nib), idx));
        }
        out
    }

    /// Reconstructs the sub-model's values at `budget`.
    ///
    /// Like [`load_budget`](Self::load_budget), an over-budget request is
    /// clamped to the stored maximum.
    pub fn values_at(&self, budget: usize) -> Vec<i64> {
        let mut vals = vec![0i64; self.group_size];
        for gt in self.load_budget(budget) {
            vals[gt.index] += gt.term.value();
        }
        vals
    }

    /// Total accesses across term and index memories since the last reset.
    pub fn total_accesses(&self) -> u64 {
        self.term_mem.accesses() + self.index_mem.accesses()
    }

    /// Resets both access counters.
    pub fn reset_accesses(&self) {
        self.term_mem.reset_accesses();
        self.index_mem.reset_accesses();
    }

    /// The configured sub-model budgets.
    pub fn budgets(&self) -> &[usize] {
        &self.budgets
    }

    /// Bits occupied by the term memory.
    pub fn term_bits(&self) -> usize {
        self.term_mem.len_bits()
    }

    /// Bits occupied by the index memory.
    pub fn index_bits_total(&self) -> usize {
        self.index_mem.len_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SdrEncoding;

    #[test]
    fn pack_round_trip_all_nibbles() {
        for e in 0..=MAX_PACKED_EXPONENT {
            for neg in [false, true] {
                let t = Term {
                    exponent: e,
                    negative: neg,
                };
                assert_eq!(unpack_term(pack_term(t).unwrap()), t);
            }
        }
    }

    #[test]
    fn pack_rejects_large_exponent() {
        let err = pack_term(Term::pos(8)).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn figure16_examples() {
        // Fig. 16(a): terms 2^4, 2^4, -2^3, 2^1 encode as 4-bit fields.
        assert_eq!(pack_term(Term::pos(4)).unwrap(), 0b0100);
        assert_eq!(pack_term(Term::neg(3)).unwrap(), 0b1011);
        assert_eq!(pack_term(Term::pos(1)).unwrap(), 0b0001);
    }

    #[test]
    fn paper_storage_accounting_resnet18() {
        // §5.4: g = 16, α = 20 -> 160 bits per group, 10 bits per weight,
        // 1.25 bits per weight per sub-model with 8 sub-models.
        assert_eq!(storage_bits(16, 20), 160);
        assert!((bits_per_weight(16, 20) - 10.0).abs() < 1e-9);
        assert!((bits_per_weight(16, 20) / 8.0 - 1.25).abs() < 1e-9);
    }

    #[test]
    fn storage_round_trips_paper_group() {
        let g = MultiResGroup::from_values(&[21, 6, 17, 11], 8, SdrEncoding::Unsigned);
        let st = MultiResStorage::store(&g, &[2, 4, 6, 8], 16).unwrap();
        assert_eq!(st.values_at(2), vec![16, 0, 16, 0]);
        assert_eq!(st.values_at(4), vec![20, 0, 16, 8]);
        assert_eq!(st.values_at(8), vec![21, 6, 16, 10]);
    }

    #[test]
    fn over_budget_load_clamps_to_stored_terms() {
        // Regression for the read contract: the docs used to promise a panic
        // while the code clamped. Clamping is the documented behavior now —
        // an over-budget read serves the finest stored sub-model.
        let g = MultiResGroup::from_values(&[21, 6, 17, 11], 8, SdrEncoding::Unsigned);
        let st = MultiResStorage::store(&g, &[2, 4, 6, 8], 16).unwrap();
        assert_eq!(st.load_budget(usize::MAX).len(), st.load_budget(8).len());
        assert_eq!(st.values_at(100), st.values_at(8));
    }

    #[test]
    fn reads_are_shared_reference_only() {
        // The read path takes `&self`: a shared borrow may both load and
        // reset counters (satisfied at compile time, pinned here so the
        // signature never regresses to `&mut`).
        let g = MultiResGroup::from_values(&[21, 6, 17, 11], 8, SdrEncoding::Unsigned);
        let st = MultiResStorage::store(&g, &[2, 4, 6, 8], 16).unwrap();
        let shared: &MultiResStorage = &st;
        shared.reset_accesses();
        let _ = shared.values_at(4);
        assert!(shared.total_accesses() > 0);
    }

    #[test]
    fn lower_budgets_touch_fewer_entries() {
        let g = MultiResGroup::from_values(&[21, 6, 17, 11], 8, SdrEncoding::Unsigned);
        let st = MultiResStorage::store(&g, &[2, 4, 6, 8], 16).unwrap();
        st.load_budget(2);
        let low = st.total_accesses();
        st.reset_accesses();
        st.load_budget(8);
        let high = st.total_accesses();
        assert!(
            low < high,
            "budget-2 accesses {low} should be < budget-8 accesses {high}"
        );
    }

    #[test]
    fn term_memory_size_matches_formula() {
        let g = MultiResGroup::from_values(&[21, 6, 17, 11], 8, SdrEncoding::Unsigned);
        let st = MultiResStorage::store(&g, &[2, 4, 6, 8], 16).unwrap();
        // 8 terms * 4 bits and 8 * log2(4) = 16 index bits.
        assert_eq!(st.term_bits(), 32);
        assert_eq!(st.index_bits_total(), 16);
    }

    #[test]
    fn packed_memory_counts_entry_spanning_reads() {
        let mut m = PackedMemory::new(8);
        // Reads below go through `&m`; only `push_field` needs `&mut`.
        m.push_field(0xABCD, 16);
        // A 4-bit read inside one entry: 1 access.
        m.read_field(0, 4);
        assert_eq!(m.accesses(), 1);
        // A read spanning the entry boundary: 2 accesses.
        m.read_field(6, 4);
        assert_eq!(m.accesses(), 3);
        assert_eq!(m.len_entries(), 2);
    }

    #[test]
    fn packed_memory_field_round_trip() {
        let mut m = PackedMemory::new(16);
        m.push_field(0b1011, 4);
        m.push_field(0b0110, 4);
        assert_eq!(m.read_field(0, 4), 0b1011);
        assert_eq!(m.read_field(4, 4), 0b0110);
    }
}

/// The per-exponent term usage table of Fig. 18: for each power-of-two
/// position, which group members own a term there (in canonical order).
///
/// # Examples
///
/// ```
/// use mri_quant::storage::term_usage_table;
/// use mri_quant::{MultiResGroup, SdrEncoding};
///
/// // Fig. 18: the 2^4 terms are used by the first and third weights.
/// let g = MultiResGroup::from_values(&[21, 6, 17, 11], 8, SdrEncoding::Unsigned);
/// let table = term_usage_table(&g);
/// assert_eq!(table[&4], vec![0, 2]);
/// assert_eq!(table[&3], vec![3]);
/// assert_eq!(table[&2], vec![0, 1]);
/// ```
pub fn term_usage_table(group: &MultiResGroup) -> std::collections::BTreeMap<u8, Vec<usize>> {
    let mut table: std::collections::BTreeMap<u8, Vec<usize>> = std::collections::BTreeMap::new();
    for gt in group.terms() {
        table.entry(gt.term.exponent).or_default().push(gt.index);
    }
    table
}

#[cfg(test)]
mod usage_table_tests {
    use super::*;
    use crate::SdrEncoding;

    #[test]
    fn fig18_usage_for_paper_group() {
        let g = MultiResGroup::from_values(&[21, 6, 17, 11], 8, SdrEncoding::Unsigned);
        let table = term_usage_table(&g);
        // 2^4 by weights 0 and 2; 2^3 by weight 3; 2^2 by weights 0 and 1;
        // 2^1 by weights 1 and 3; one 2^0 kept (weight 0) at budget 8.
        assert_eq!(table[&4], vec![0, 2]);
        assert_eq!(table[&3], vec![3]);
        assert_eq!(table[&2], vec![0, 1]);
        assert_eq!(table[&1], vec![1, 3]);
        assert_eq!(table[&0], vec![0]);
    }

    #[test]
    fn usage_table_covers_all_terms() {
        let g = MultiResGroup::from_values(&[5, 9, 3, 12], 16, SdrEncoding::Naf);
        let table = term_usage_table(&g);
        let total: usize = table.values().map(Vec::len).sum();
        assert_eq!(total, g.terms().len());
    }
}
