//! Logarithmic quantization (LQ): round each value to a single power of two.
//!
//! LQ is the extreme point of the resolution spectrum — one term per value —
//! that the multi-resolution model's lowest-budget sub-models approach
//! (paper §6.2: the (α=8, β=2) sub-model's weights concentrate on single
//! powers of two, "interpolating" towards LQ).

use crate::Term;

/// Rounds an integer to the nearest power of two (times sign), i.e. keeps a
/// single term. Zero stays zero. Ties round to the larger power, matching
/// "round half away" on the log scale boundary at `1.5 × 2^e`.
///
/// # Examples
///
/// ```
/// use mri_quant::lq;
///
/// assert_eq!(lq::quantize_i64(6), 8);    // 6 is closer to 8 than to 4
/// assert_eq!(lq::quantize_i64(5), 4);
/// assert_eq!(lq::quantize_i64(-11), -8);
/// assert_eq!(lq::quantize_i64(0), 0);
/// ```
pub fn quantize_i64(value: i64) -> i64 {
    match term(value) {
        Some(t) => t.value(),
        None => 0,
    }
}

/// The single term LQ keeps for `value`, or `None` for zero.
pub fn term(value: i64) -> Option<Term> {
    if value == 0 {
        return None;
    }
    let negative = value < 0;
    let mag = value.unsigned_abs();
    let e = 63 - mag.leading_zeros();
    // Candidates 2^e and 2^(e+1); pick the nearer (ties up).
    let lo = 1u64 << e;
    let hi = lo << 1;
    let exponent = if mag - lo >= hi - mag {
        (e + 1) as u8
    } else {
        e as u8
    };
    Some(Term { exponent, negative })
}

/// Logarithmically quantizes a real value given a step `scale` (the value is
/// first expressed in integer steps, then rounded to a power of two).
///
/// # Panics
///
/// Panics if `scale <= 0`.
pub fn quantize_f32(x: f32, scale: f32) -> f32 {
    assert!(scale > 0.0, "scale must be positive");
    quantize_i64((x / scale).round() as i64) as f32 * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_are_fixed_points() {
        for e in 0..20u8 {
            let v = 1i64 << e;
            assert_eq!(quantize_i64(v), v);
            assert_eq!(quantize_i64(-v), -v);
        }
    }

    #[test]
    fn figure2_examples() {
        // Fig. 2(c): 21 -> 16, 6 -> 4 (paper rounds 6 down), 17 -> 16, 11 -> 8.
        assert_eq!(quantize_i64(21), 16);
        assert_eq!(quantize_i64(17), 16);
        assert_eq!(quantize_i64(11), 8);
        // 6 sits exactly between 4 and 8; our tie rule rounds up. The paper's
        // Fig. 2(c) keeps only the largest *existing* term (4); both are
        // single-term encodings — document the difference:
        assert_eq!(quantize_i64(6), 8);
        assert_eq!(term(6), Some(Term::pos(3)));
    }

    #[test]
    fn error_is_relative_not_absolute() {
        // LQ error grows with magnitude: |q(x) - x| can be large for big x.
        assert_eq!(quantize_i64(1000), 1024);
        assert_eq!((quantize_i64(1500) - 1500).abs(), 476); // rounds to 1024
    }

    #[test]
    fn f32_quantization_uses_scale() {
        let q = quantize_f32(0.6, 0.1);
        // 0.6 / 0.1 = 6 -> 8 -> 0.8
        assert!((q - 0.8).abs() < 1e-6);
        assert_eq!(quantize_f32(0.0, 0.5), 0.0);
    }

    #[test]
    fn zero_has_no_term() {
        assert_eq!(term(0), None);
        assert_eq!(quantize_i64(0), 0);
    }
}
