//! # mri-quant
//!
//! Quantization machinery for *Training for Multi-resolution Inference using
//! Reusable Quantization Terms* (ASPLOS 2021).
//!
//! The crate implements, from scratch:
//!
//! * [`Term`] — a signed power-of-two term `±2^e`;
//! * [`sdr`] — binary encodings: unsigned binary (UBR), the non-adjacent form
//!   (NAF, the minimal signed-digit representation), and radix-2 Booth
//!   recoding;
//! * [`uq`] — uniform quantization with symmetric (weights) and unsigned
//!   (activations) ranges plus PACT-style clipping;
//! * [`dq`] — values-only data quantization through per-level lookup
//!   tables (term-quantized or bit-truncated), for mask-free eval paths;
//! * [`lq`] — logarithmic quantization (round to one power of two);
//! * [`tq`] — **term quantization**: keep the leading `α` terms across a
//!   group of `g` values ([`GroupTermQuantizer`]), and the nested
//!   multi-resolution term sequence ([`MultiResGroup`]) that lets one stored
//!   model spawn sub-models at any budget by prefix truncation;
//! * [`storage`] — the packed 4-bit term format, the separate index memory
//!   and the two-term-increment layout of the paper's §5.4, with memory
//!   access accounting;
//! * [`packed`] — the zero-copy serving representation built on that format:
//!   [`PackedTermStore`] holds one row's nibbles/indices in increment order,
//!   every resolution is a pointer/length slice of the same bytes, and the
//!   shift-add kernels ([`packed::matmul_bt_packed`],
//!   [`packed::matmul_packed_lhs`]) compute on the nibbles directly —
//!   bit-identical to the f32 dequantize path without materializing it.
//!
//! # Examples
//!
//! The paper's running example (Fig. 4): a group of four 5-bit weights
//! quantized with a term budget of 8:
//!
//! ```
//! use mri_quant::{GroupTermQuantizer, SdrEncoding};
//!
//! let q = GroupTermQuantizer::new(4, 8, SdrEncoding::Unsigned);
//! let out = q.quantize_i64(&[21, 6, 17, 11]);
//! assert_eq!(out.values, vec![21, 6, 16, 10]);
//! ```

#![warn(missing_docs)]

pub mod dq;
pub mod lq;
pub mod packed;
pub mod sdr;
pub mod storage;
pub(crate) mod tele;
pub mod tq;
pub mod uq;

mod term;

pub use packed::{PackedSlice, PackedTermStore};
pub use sdr::SdrEncoding;
pub use term::{term_sum, GroupTerm, Term};
pub use tq::{GroupTermQuantizer, MultiResGroup, MultiResSlice, QuantizedGroup};
pub use uq::{QuantRange, UniformQuantizer};
