//! The zero-copy packed serving representation (paper §5.4, Figs. 16–18).
//!
//! [`PackedTermStore`] is the deployment twin of
//! [`MultiResSlice`]: the same per-group canonical term
//! sequences, but held in the paper's wire format — a 4-bit
//! exponent/sign nibble per term ([`pack_term`] layout, two terms per byte)
//! plus a byte-wide index memory — laid out in increment order, so *every*
//! resolution is a prefix of the same bytes. Serving a coarser sub-model is a
//! pure pointer/length change ([`PackedSlice`]), never a re-encode and never
//! an allocation.
//!
//! The store is read-only after construction: all read paths take `&self`
//! (access tallies live on an atomic cell through `mri-sync`), so one store
//! can serve concurrent tenants at different resolutions.
//!
//! The kernels at the bottom ([`PackedTermStore::dot_scaled`],
//! [`matmul_bt_packed`], [`matmul_packed_lhs`]) compute directly on the
//! nibbles: each group's integers are rebuilt by accumulating `±(1 << e)` in
//! `i64` (a shift and an add per term — no multiplier), and the uniform
//! quantization scale is folded in as the per-element `v as f32 * scale` the
//! f32 dequantize path has always used, in the same element order. That makes
//! every kernel bit-identical to "materialize the f32 weight tensor, then run
//! the dense GEMM" for finite inputs — the property the proptests pin — while
//! materializing nothing.

use crate::storage::{pack_term, unpack_term, PackTermError};
use crate::tq::{scaled_budget, MAX_GROUP_STACK};
use crate::{GroupTerm, MultiResSlice, SdrEncoding};
use mri_sync::atomic::{AtomicU64, Ordering};
use mri_sync::pool;

/// Weight rows (output columns) per pooled [`matmul_bt_packed`] job. Fixed —
/// never derived from the lane count — so work partitioning cannot perturb
/// results.
const PAR_GRAIN_COLS: usize = 8;

/// Output rows per pooled [`matmul_packed_lhs`] job.
const PAR_GRAIN_ROWS: usize = 8;

/// Minimum `m·k·n` work product before pooled dispatch pays for the queueing
/// overhead; below it both kernels stay on the calling thread.
const PAR_MIN_WORK: usize = 1 << 16;

/// Largest group size the byte-wide index memory can address.
pub const MAX_PACKED_GROUP: usize = 256;

/// A read-only packed multi-resolution term store for one weight row.
///
/// Layout: terms sit in per-group canonical (= increment) order; each group
/// starts on a byte boundary (groups with an odd term count carry one unused
/// pad nibble, mirroring the word alignment of the hardware term memory), so
/// any group × budget view is a plain subslice of the nibble and index
/// memories.
#[derive(Debug)]
pub struct PackedTermStore {
    /// Term memory: two 4-bit `[sign | e2 e1 e0]` nibbles per byte, low
    /// nibble first.
    nibbles: Vec<u8>,
    /// Index memory: the owning value's position within its group, one byte
    /// per term slot (slot-aligned with `nibbles`, including pad slots).
    indices: Vec<u8>,
    /// First term slot of each group (always even: groups are byte-aligned).
    starts: Vec<u32>,
    /// Stored (un-padded) term count of each group.
    counts: Vec<u32>,
    /// Number of encoded values.
    len: usize,
    /// The grouping `g`.
    group_size: usize,
    /// The budget the terms were stored at; larger budgets cannot be served.
    max_alpha: usize,
    /// The encoding the values were expanded with.
    encoding: SdrEncoding,
    /// Terms decoded by read paths since the last reset.
    term_reads: AtomicU64,
}

impl Clone for PackedTermStore {
    fn clone(&self) -> Self {
        PackedTermStore {
            nibbles: self.nibbles.clone(),
            indices: self.indices.clone(),
            starts: self.starts.clone(),
            counts: self.counts.clone(),
            len: self.len,
            group_size: self.group_size,
            max_alpha: self.max_alpha,
            encoding: self.encoding,
            // ordering: Relaxed — monotonic statistic with no payload; the
            // clone snapshots whatever tally the source has reached.
            term_reads: AtomicU64::new(self.term_reads.load(Ordering::Relaxed)),
        }
    }
}

impl PackedTermStore {
    /// Encodes a slice of quantized integers once at `max_alpha` terms per
    /// full group (tails scaled, like
    /// [`MultiResSlice::encode`]). Pass
    /// `usize::MAX` to store every term and serve *any* budget.
    ///
    /// # Errors
    ///
    /// Returns [`PackTermError`] when a term exponent exceeds the 3-bit
    /// packed field (values within `i8` range always fit, for all four
    /// encodings).
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or exceeds [`MAX_PACKED_GROUP`].
    pub fn encode(
        values: &[i64],
        group_size: usize,
        max_alpha: usize,
        encoding: SdrEncoding,
    ) -> Result<Self, PackTermError> {
        Self::from_slice(&MultiResSlice::encode(
            values, group_size, max_alpha, encoding,
        ))
    }

    /// Packs an already-encoded [`MultiResSlice`] into the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`PackTermError`] when a term exponent exceeds the 3-bit
    /// packed field.
    ///
    /// # Panics
    ///
    /// Panics if the slice's group size exceeds [`MAX_PACKED_GROUP`] (the
    /// index memory is one byte per term).
    pub fn from_slice(slice: &MultiResSlice) -> Result<Self, PackTermError> {
        let group_size = slice.group_size();
        assert!(
            group_size <= MAX_PACKED_GROUP,
            "group size {group_size} exceeds the byte-wide index memory"
        );
        let n_groups = slice.len().div_ceil(group_size.max(1));
        let mut nibbles = Vec::with_capacity(slice.stored_terms() / 2 + n_groups);
        let mut indices = Vec::with_capacity(slice.stored_terms() + n_groups);
        let mut starts = Vec::with_capacity(n_groups);
        let mut counts = Vec::with_capacity(n_groups);
        let mut slot = 0u32;
        for (_glen, terms) in slice.groups() {
            starts.push(slot);
            counts.push(terms.len() as u32);
            for gt in terms {
                let nib = pack_term(gt.term)?;
                if slot.is_multiple_of(2) {
                    nibbles.push(nib);
                } else {
                    let last = nibbles.last_mut().expect("odd slot follows a pushed byte");
                    *last |= nib << 4;
                }
                indices.push(gt.index as u8);
                slot += 1;
            }
            if !slot.is_multiple_of(2) {
                // Pad to the byte boundary so the next group starts aligned;
                // the pad slot is never read (reads stop at `counts`).
                indices.push(0);
                slot += 1;
            }
        }
        Ok(PackedTermStore {
            nibbles,
            indices,
            starts,
            counts,
            len: slice.len(),
            group_size,
            max_alpha: slice.max_alpha(),
            encoding: slice.encoding(),
            term_reads: AtomicU64::new(0),
        })
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the store holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The grouping `g` the store was encoded with.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The budget the store was encoded at (upper bound on servable `α`).
    pub fn max_alpha(&self) -> usize {
        self.max_alpha
    }

    /// The encoding the values were expanded with.
    pub fn encoding(&self) -> SdrEncoding {
        self.encoding
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// Total number of stored (un-padded) terms.
    pub fn stored_terms(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Bytes held by the packed memories (nibbles + indices + group table) —
    /// the whole multi-resolution footprint, shared by every budget.
    pub fn packed_bytes(&self) -> usize {
        self.nibbles.len() + self.indices.len() + 4 * (self.starts.len() + self.counts.len())
    }

    /// Terms decoded by `&self` read paths since the last reset.
    pub fn term_reads(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, read in isolation.
        self.term_reads.load(Ordering::Relaxed)
    }

    /// Resets the read tally.
    pub fn reset_term_reads(&self) {
        // ordering: Relaxed — counter reset carries no payload to publish.
        self.term_reads.store(0, Ordering::Relaxed)
    }

    /// The zero-copy truncated view of one group at budget `alpha`: the
    /// nibble/index prefix the sub-model reads. Lowering `alpha` only
    /// shortens `len` — the pointers do not move and nothing is allocated.
    ///
    /// # Panics
    ///
    /// Panics if `group >= num_groups()` or `alpha > max_alpha()`.
    pub fn group_slice(&self, group: usize, alpha: usize) -> PackedSlice<'_> {
        assert!(
            alpha <= self.max_alpha,
            "budget {alpha} exceeds encoded {}",
            self.max_alpha
        );
        let lo = group * self.group_size;
        let glen = self.group_size.min(self.len - lo);
        let keep = scaled_budget(alpha, self.group_size, glen).min(self.counts[group] as usize);
        let start = self.starts[group] as usize;
        PackedSlice {
            nibbles: &self.nibbles[start / 2..(start + keep).div_ceil(2)],
            indices: &self.indices[start..start + keep],
            len: keep,
        }
    }

    /// Walks every group at budget `alpha`, handing the callback the group's
    /// value offset, its value count and its truncated [`PackedSlice`].
    /// Tallies the decoded terms once per walk.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha()`.
    pub fn for_each_group(&self, alpha: usize, mut f: impl FnMut(usize, usize, PackedSlice<'_>)) {
        assert!(
            alpha <= self.max_alpha,
            "budget {alpha} exceeds encoded {}",
            self.max_alpha
        );
        let mut served = 0u64;
        let mut lo = 0usize;
        for g in 0..self.counts.len() {
            let glen = self.group_size.min(self.len - lo);
            let keep = scaled_budget(alpha, self.group_size, glen).min(self.counts[g] as usize);
            let start = self.starts[g] as usize;
            served += keep as u64;
            f(
                lo,
                glen,
                PackedSlice {
                    nibbles: &self.nibbles[start / 2..(start + keep).div_ceil(2)],
                    indices: &self.indices[start..start + keep],
                    len: keep,
                },
            );
            lo += glen;
        }
        // ordering: Relaxed — pure event counting on immutable bytes; one
        // coarse add per walk keeps the hot path free of per-term atomics.
        self.term_reads.fetch_add(served, Ordering::Relaxed);
    }

    /// Reconstructs the quantized integers at budget `alpha` into `out` by
    /// shift-add accumulation of `±(1 << e)` straight from the nibbles.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha()` or `out.len() != len()`.
    pub fn values_at_into(&self, alpha: usize, out: &mut [i64]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        out.fill(0);
        self.for_each_group(alpha, |lo, glen, slice| {
            slice.accumulate_into(&mut out[lo..lo + glen]);
        });
    }

    /// [`Self::values_at_into`] into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha()`.
    pub fn values_at(&self, alpha: usize) -> Vec<i64> {
        let mut out = vec![0i64; self.len];
        self.values_at_into(alpha, &mut out);
        out
    }

    /// Writes `values_at(alpha)[i] as f32 * scale` into `out` — bit-identical
    /// to [`MultiResSlice::write_scaled`] on the same terms, decoded from the
    /// packed bytes instead of a `GroupTerm` array.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha()` or `out.len() != len()`.
    pub fn write_scaled(&self, alpha: usize, scale: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        self.for_each_group(alpha, |lo, glen, slice| {
            let mut stack = [0i64; MAX_GROUP_STACK];
            let mut heap = Vec::new();
            let ints: &mut [i64] = if glen <= MAX_GROUP_STACK {
                &mut stack[..glen]
            } else {
                heap.resize(glen, 0);
                &mut heap[..glen]
            };
            slice.accumulate_into(ints);
            for (o, &v) in out[lo..lo + glen].iter_mut().zip(ints.iter()) {
                *o = v as f32 * scale;
            }
        });
    }

    /// The number of terms actually served at budget `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha()`.
    pub fn kept_terms_at(&self, alpha: usize) -> usize {
        let mut kept = 0usize;
        self.for_each_group(alpha, |_, _, slice| kept += slice.len());
        kept
    }

    /// Multiplier-free dot product against `x` at budget `alpha`: group
    /// integers are rebuilt by i64 shift-adds, then folded with `x` and the
    /// row scale in value order — bit-identical (for finite `x`) to
    /// dequantizing the row to f32 and running the dense dot, because zeroed
    /// positions contribute an exact `±0.0` there.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha()` or `x.len() != len()`.
    pub fn dot_scaled(&self, alpha: usize, scale: f32, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.len, "input length mismatch");
        let mut acc = 0.0f32;
        self.for_each_group(alpha, |lo, glen, slice| {
            let group = GroupValues::decode(&slice, glen);
            for (jj, v) in group.nonzero() {
                acc += x[lo + jj] * (v as f32 * scale);
            }
        });
        acc
    }
}

/// A borrowed, budget-truncated view into a store's packed memories: the
/// prefix of one group's term nibbles and indices. Truncation to a coarser
/// resolution only shrinks `len`; the slices are never copied.
#[derive(Debug, Clone, Copy)]
pub struct PackedSlice<'a> {
    nibbles: &'a [u8],
    indices: &'a [u8],
    len: usize,
}

impl<'a> PackedSlice<'a> {
    /// Number of terms in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view holds no terms.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw nibble bytes backing the view (two terms per byte).
    pub fn nibble_bytes(&self) -> &'a [u8] {
        self.nibbles
    }

    /// The raw index bytes backing the view.
    pub fn index_bytes(&self) -> &'a [u8] {
        self.indices
    }

    /// Decodes the view's terms in stored (increment) order.
    pub fn terms(&self) -> impl Iterator<Item = GroupTerm> + 'a {
        let nibbles = self.nibbles;
        self.indices.iter().enumerate().map(move |(s, &idx)| {
            let byte = nibbles[s / 2];
            let nib = if s.is_multiple_of(2) {
                byte & 0x0F
            } else {
                byte >> 4
            };
            GroupTerm::new(unpack_term(nib), idx as usize)
        })
    }

    /// Shift-add accumulation: `out[index] += ±(1 << exponent)` per term.
    ///
    /// # Panics
    ///
    /// Panics if a term index is out of bounds for `out`.
    pub fn accumulate_into(&self, out: &mut [i64]) {
        for gt in self.terms() {
            out[gt.index] += gt.term.value();
        }
    }
}

/// One decoded group held in stack buffers: the rebuilt integers of up to
/// [`MAX_GROUP_STACK`] values, exposed as the ascending `(position, value)`
/// run of its non-zeros. The kernels walk this run so truncated-away weights
/// cost nothing.
struct GroupValues {
    ints: [i64; MAX_GROUP_STACK],
    spill: Vec<i64>,
    glen: usize,
}

impl GroupValues {
    fn decode(slice: &PackedSlice<'_>, glen: usize) -> Self {
        let mut g = GroupValues {
            ints: [0i64; MAX_GROUP_STACK],
            spill: Vec::new(),
            glen,
        };
        if glen <= MAX_GROUP_STACK {
            slice.accumulate_into(&mut g.ints[..glen]);
        } else {
            g.spill.resize(glen, 0);
            slice.accumulate_into(&mut g.spill);
        }
        g
    }

    /// Ascending `(position, value)` pairs of the non-zero reconstructions.
    fn nonzero(&self) -> impl Iterator<Item = (usize, i64)> + '_ {
        let vals: &[i64] = if self.glen <= MAX_GROUP_STACK {
            &self.ints[..self.glen]
        } else {
            &self.spill
        };
        vals.iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(j, &v)| (j, v))
    }
}

/// Packed GEMM for the linear eval path: `out[m, n] = x[m, k] · Wᵀ`, where
/// `W`'s `n` rows live as packed stores of length `k`. Row weights are
/// rebuilt group-by-group with i64 shift-adds (each row decoded once, not
/// once per batch element) and folded into the accumulators in the same
/// element order as the dense `matmul_bt` over the dequantized tensor, so the
/// result is bit-identical to the f32 path for finite `x` — with no `[n, k]`
/// f32 weight tensor ever materialized.
///
/// Each weight row `j` produces output column `j` independently, so large
/// problems dispatch fixed blocks of `PAR_GRAIN_COLS` rows over
/// [`mri_sync::pool`]. Every column is accumulated in a dense local buffer in
/// the serial element order and scattered once, so the result does not depend
/// on the worker count.
///
/// # Panics
///
/// Panics if a row's length differs from `k`, `alpha` exceeds a row's
/// `max_alpha`, or the buffer sizes do not match `m·k` / `m·n`.
pub fn matmul_bt_packed(
    x: &[f32],
    m: usize,
    k: usize,
    rows: &[PackedTermStore],
    alpha: usize,
    scale: f32,
    out: &mut [f32],
) {
    let mut col = Vec::new();
    matmul_bt_packed_scratch(x, m, k, rows, alpha, scale, &mut col, out);
}

/// [`matmul_bt_packed`] with a caller-owned column scratch (grown to `m`,
/// never shrunk) — the allocation-free variant serving engines reuse across
/// calls. The parallel branch allocates its per-job column buffers on the
/// executing lanes as before; only the serial path's scratch is lifted to
/// the caller. Results are bit-identical to [`matmul_bt_packed`].
///
/// # Panics
///
/// As [`matmul_bt_packed`].
#[allow(clippy::too_many_arguments)]
pub fn matmul_bt_packed_scratch(
    x: &[f32],
    m: usize,
    k: usize,
    rows: &[PackedTermStore],
    alpha: usize,
    scale: f32,
    col: &mut Vec<f32>,
    out: &mut [f32],
) {
    let n = rows.len();
    assert_eq!(x.len(), m * k, "input buffer mismatch");
    assert_eq!(out.len(), m * n, "output buffer mismatch");
    // Validate every row before any job is spawned: shape panics should fire
    // on the calling thread, not ride out of a worker.
    for (j, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), k, "row {j} length != k");
    }
    out.fill(0.0);
    if pool::lanes() > 1 && n >= 2 * PAR_GRAIN_COLS && m * k * n > PAR_MIN_WORK {
        let optr = pool::SendPtr::new(out.as_mut_ptr());
        pool::scope(|s| {
            for (t, chunk) in rows.chunks(PAR_GRAIN_COLS).enumerate() {
                let j0 = t * PAR_GRAIN_COLS;
                s.spawn(move || {
                    let mut col = vec![0.0f32; m];
                    for (u, row) in chunk.iter().enumerate() {
                        let j = j0 + u;
                        col.fill(0.0);
                        bt_packed_col(x, k, row, alpha, scale, &mut col);
                        for (i, &v) in col.iter().enumerate() {
                            // SAFETY: this job exclusively owns output column
                            // `j` — jobs cover disjoint `j` ranges — and the
                            // enclosing scope joins every job before `out` is
                            // observed again.
                            unsafe { *optr.as_ptr().add(i * n + j) = v };
                        }
                    }
                });
            }
        });
    } else {
        if col.len() < m {
            col.resize(m, 0.0);
        }
        let col = &mut col[..m];
        for (j, row) in rows.iter().enumerate() {
            col.fill(0.0);
            bt_packed_col(x, k, row, alpha, scale, col);
            for (i, &v) in col.iter().enumerate() {
                out[i * n + j] = v;
            }
        }
    }
}

/// Accumulates one packed weight row against every input row: on return
/// `col[i]` holds `x[i, ..] · row` (length-`m` buffer, zeroed by the caller).
/// Group and non-zero order match the dense `matmul_bt` accumulation chain.
fn bt_packed_col(
    x: &[f32],
    k: usize,
    row: &PackedTermStore,
    alpha: usize,
    scale: f32,
    col: &mut [f32],
) {
    row.for_each_group(alpha, |lo, glen, slice| {
        let group = GroupValues::decode(&slice, glen);
        // Materialize the sparse run once per group, then sweep the
        // batch: the decode cost is amortized over all `m` inputs.
        let mut run = [(0usize, 0.0f32); MAX_GROUP_STACK];
        let mut spill: Vec<(usize, f32)> = Vec::new();
        let mut nnz = 0usize;
        for (jj, v) in group.nonzero() {
            let entry = (jj, v as f32 * scale);
            if nnz < MAX_GROUP_STACK {
                run[nnz] = entry;
            } else {
                spill.push(entry);
            }
            nnz += 1;
        }
        let head = &run[..nnz.min(MAX_GROUP_STACK)];
        for (i, o) in col.iter_mut().enumerate() {
            let xrow = &x[i * k + lo..i * k + lo + glen];
            for &(jj, w) in head.iter().chain(spill.iter()) {
                *o += xrow[jj] * w;
            }
        }
    });
}

/// Packed GEMM for the im2col conv eval path: `out[rows.len(), n] = W · b`,
/// where each packed store is one flattened filter row of length `k` and
/// `b` is the `[k, n]` column matrix. Element order matches the dense
/// `matmul` over the dequantized weights (which skips zero `a` entries), so
/// the product is bit-identical to the f32 path for finite `b`.
///
/// Output rows are disjoint per filter, so large problems dispatch fixed
/// blocks of `PAR_GRAIN_ROWS` rows over [`mri_sync::pool`]; both branches
/// run the same per-row worker, keeping results worker-count independent.
///
/// # Panics
///
/// Panics if a row's length differs from `k`, `alpha` exceeds a row's
/// `max_alpha`, or the buffer sizes do not match `k·n` / `rows.len()·n`.
pub fn matmul_packed_lhs(
    rows: &[PackedTermStore],
    alpha: usize,
    scale: f32,
    b: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(b.len(), k * n, "rhs buffer mismatch");
    assert_eq!(out.len(), rows.len() * n, "output buffer mismatch");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), k, "row {i} length != k");
    }
    out.fill(0.0);
    // Degenerate width: nothing to compute, and `chunks_mut(0)` would panic.
    if n == 0 {
        return;
    }
    if pool::lanes() > 1 && rows.len() >= 2 * PAR_GRAIN_ROWS && rows.len() * k * n > PAR_MIN_WORK {
        pool::scope(|s| {
            for (t, chunk) in out.chunks_mut(PAR_GRAIN_ROWS * n).enumerate() {
                let i0 = t * PAR_GRAIN_ROWS;
                let row_block = &rows[i0..i0 + chunk.len() / n];
                s.spawn(move || {
                    lhs_packed_rows(row_block, alpha, scale, b, n, chunk);
                });
            }
        });
    } else {
        lhs_packed_rows(rows, alpha, scale, b, n, out);
    }
}

/// Multiplies a block of packed filter rows against `b`, one output row per
/// filter; `out_chunk` covers exactly `rows.len()` rows of width `n`.
fn lhs_packed_rows(
    rows: &[PackedTermStore],
    alpha: usize,
    scale: f32,
    b: &[f32],
    n: usize,
    out_chunk: &mut [f32],
) {
    for (row, out_row) in rows.iter().zip(out_chunk.chunks_mut(n)) {
        row.for_each_group(alpha, |lo, glen, slice| {
            let group = GroupValues::decode(&slice, glen);
            for (jj, v) in group.nonzero() {
                let av = v as f32 * scale;
                let brow = &b[(lo + jj) * n..(lo + jj + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupTermQuantizer;

    const ENCODINGS: [SdrEncoding; 4] = [
        SdrEncoding::Unsigned,
        SdrEncoding::Naf,
        SdrEncoding::Booth,
        SdrEncoding::Booth4,
    ];

    fn sample_values(n: usize) -> Vec<i64> {
        // Deterministic mix of signs and magnitudes within i8 range.
        (0..n).map(|i| ((i * 37 + 11) % 255) as i64 - 127).collect()
    }

    #[test]
    fn values_round_trip_all_encodings_and_budgets() {
        for enc in ENCODINGS {
            let vals = sample_values(50); // 3 full groups of 16 + a tail of 2
            let st = PackedTermStore::encode(&vals, 16, usize::MAX, enc).unwrap();
            let slice = MultiResSlice::encode(&vals, 16, usize::MAX, enc);
            for alpha in 0..=24 {
                assert_eq!(
                    st.values_at(alpha),
                    slice.values_at(alpha),
                    "{enc:?} α={alpha}"
                );
            }
            let q = GroupTermQuantizer::new(16, 8, enc);
            assert_eq!(st.values_at(8), q.quantize_slice(&vals), "{enc:?} direct");
        }
    }

    #[test]
    fn truncation_is_a_pure_length_change() {
        let vals = sample_values(16);
        let st = PackedTermStore::encode(&vals, 16, usize::MAX, SdrEncoding::Naf).unwrap();
        let fine = st.group_slice(0, 12);
        let coarse = st.group_slice(0, 4);
        // Same backing pointers, shorter view: no bytes moved, none copied.
        assert_eq!(fine.nibble_bytes().as_ptr(), coarse.nibble_bytes().as_ptr());
        assert_eq!(fine.index_bytes().as_ptr(), coarse.index_bytes().as_ptr());
        assert_eq!(coarse.len(), 4);
        assert!(coarse.len() < fine.len());
        // The coarse view is a prefix of the fine one.
        let fine_terms: Vec<_> = fine.terms().collect();
        let coarse_terms: Vec<_> = coarse.terms().collect();
        assert_eq!(&fine_terms[..coarse_terms.len()], &coarse_terms[..]);
    }

    #[test]
    fn odd_group_counts_stay_byte_aligned() {
        // group_size 4 with budget-limited tails forces odd per-group term
        // counts; every group must still start on a byte boundary.
        let vals = sample_values(13);
        let st = PackedTermStore::encode(&vals, 4, 3, SdrEncoding::Unsigned).unwrap();
        for g in 0..st.num_groups() {
            let s = st.group_slice(g, 3);
            assert!(s.len() <= 3);
        }
        let slice = MultiResSlice::encode(&vals, 4, 3, SdrEncoding::Unsigned);
        for alpha in 0..=3 {
            assert_eq!(st.values_at(alpha), slice.values_at(alpha));
        }
    }

    #[test]
    fn write_scaled_is_bit_identical_to_slice_path() {
        for enc in ENCODINGS {
            let vals = sample_values(40);
            let st = PackedTermStore::encode(&vals, 16, usize::MAX, enc).unwrap();
            let slice = MultiResSlice::encode(&vals, 16, usize::MAX, enc);
            let scale = 0.031_25f32;
            for alpha in [0, 1, 4, 8, 12, 16] {
                let mut a = vec![0.0f32; vals.len()];
                let mut b = vec![0.0f32; vals.len()];
                st.write_scaled(alpha, scale, &mut a);
                slice.write_scaled(alpha, scale, &mut b);
                let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "{enc:?} α={alpha}");
            }
        }
    }

    #[test]
    fn dot_is_bit_identical_to_dense_dequantized_dot() {
        for enc in ENCODINGS {
            let vals = sample_values(50);
            let st = PackedTermStore::encode(&vals, 16, usize::MAX, enc).unwrap();
            let scale = 0.007_8f32;
            let x: Vec<f32> = (0..vals.len())
                .map(|i| (i as f32 * 0.37 - 9.0) * 0.25)
                .collect();
            for alpha in [0, 2, 5, 8, 16] {
                let mut w = vec![0.0f32; vals.len()];
                st.write_scaled(alpha, scale, &mut w);
                let mut dense = 0.0f32;
                for (xv, wv) in x.iter().zip(w.iter()) {
                    dense += xv * wv;
                }
                let packed = st.dot_scaled(alpha, scale, &x);
                assert_eq!(packed.to_bits(), dense.to_bits(), "{enc:?} α={alpha}");
            }
        }
    }

    #[test]
    fn matmul_bt_packed_matches_dense_reference() {
        let (m, k, nr) = (3, 40, 5);
        let scale = 0.015_625f32;
        let alpha = 6;
        let rows: Vec<PackedTermStore> = (0..nr)
            .map(|r| {
                let vals: Vec<i64> = sample_values(k).iter().map(|v| v + r as i64).collect();
                PackedTermStore::encode(&vals, 16, usize::MAX, SdrEncoding::Naf).unwrap()
            })
            .collect();
        let x: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.5 - 3.0).collect();
        // Dense reference: dequantize each row, then the matmul_bt loop nest.
        let mut w = vec![0.0f32; nr * k];
        for (r, row) in rows.iter().enumerate() {
            row.write_scaled(alpha, scale, &mut w[r * k..(r + 1) * k]);
        }
        let mut dense = vec![0.0f32; m * nr];
        for i in 0..m {
            for j in 0..nr {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += x[i * k + p] * w[j * k + p];
                }
                dense[i * nr + j] = acc;
            }
        }
        let mut packed = vec![0.0f32; m * nr];
        matmul_bt_packed(&x, m, k, &rows, alpha, scale, &mut packed);
        let pb: Vec<u32> = packed.iter().map(|v| v.to_bits()).collect();
        let db: Vec<u32> = dense.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, db);
    }

    #[test]
    fn matmul_packed_lhs_matches_dense_reference() {
        let (nr, k, n) = (4, 33, 7);
        let scale = 0.062_5f32;
        let alpha = 5;
        let rows: Vec<PackedTermStore> = (0..nr)
            .map(|r| {
                let vals: Vec<i64> = sample_values(k).iter().map(|v| v - r as i64).collect();
                PackedTermStore::encode(&vals, 16, usize::MAX, SdrEncoding::Booth).unwrap()
            })
            .collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 * 0.3 - 1.5).collect();
        // Dense reference: dequantize, then the matmul loop nest (zero-skip
        // on the lhs entry, like `mri_tensor::ops::matmul`).
        let mut w = vec![0.0f32; nr * k];
        for (r, row) in rows.iter().enumerate() {
            row.write_scaled(alpha, scale, &mut w[r * k..(r + 1) * k]);
        }
        let mut dense = vec![0.0f32; nr * n];
        for i in 0..nr {
            for p in 0..k {
                let av = w[i * k + p];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    dense[i * n + j] += av * b[p * n + j];
                }
            }
        }
        let mut packed = vec![0.0f32; nr * n];
        matmul_packed_lhs(&rows, alpha, scale, &b, k, n, &mut packed);
        let pb: Vec<u32> = packed.iter().map(|v| v.to_bits()).collect();
        let db: Vec<u32> = dense.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, db);
    }

    #[test]
    fn read_paths_take_shared_references_and_tally() {
        let vals = sample_values(32);
        let st = PackedTermStore::encode(&vals, 16, usize::MAX, SdrEncoding::Naf).unwrap();
        let shared: &PackedTermStore = &st;
        shared.reset_term_reads();
        let _ = shared.values_at(4);
        let four = shared.term_reads();
        shared.reset_term_reads();
        let _ = shared.values_at(16);
        let sixteen = shared.term_reads();
        assert!(
            0 < four && four < sixteen,
            "coarser budgets must touch fewer terms ({four} vs {sixteen})"
        );
    }

    #[test]
    fn kept_terms_match_slice_accounting() {
        let vals = sample_values(50);
        let st = PackedTermStore::encode(&vals, 16, usize::MAX, SdrEncoding::Booth4).unwrap();
        let slice = MultiResSlice::encode(&vals, 16, usize::MAX, SdrEncoding::Booth4);
        for alpha in [0, 1, 3, 8, 20] {
            assert_eq!(st.kept_terms_at(alpha), slice.kept_terms_at(alpha));
        }
        assert_eq!(st.stored_terms(), slice.stored_terms());
    }

    #[test]
    fn packed_footprint_is_a_fraction_of_the_term_array() {
        let vals = sample_values(256);
        let st = PackedTermStore::encode(&vals, 16, usize::MAX, SdrEncoding::Naf).unwrap();
        let term_array_bytes = st.stored_terms() * std::mem::size_of::<GroupTerm>();
        assert!(
            st.packed_bytes() * 4 < term_array_bytes,
            "packed {}B should be well under the {}B GroupTerm array",
            st.packed_bytes(),
            term_array_bytes
        );
    }
}
