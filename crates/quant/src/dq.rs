//! Values-only data quantization: a per-integer-level lookup table.
//!
//! Data (activations) are quantized per value — UQ to an integer level at
//! the meta bitwidth, then either per-value term truncation (`β` budget) or
//! plain low-bit truncation for shared-scale UQ sub-models. Because the UQ
//! output is a small integer range, the whole post-UQ transform collapses
//! into one table indexed by the level: [`DataLut`] builds that table once
//! per (clip, resolution) pair and then maps each element with a clamp, a
//! round and a load.
//!
//! This module deliberately produces **values only**. The straight-through
//! and PACT saturation masks needed by training are a separate concern
//! (`mri-core`'s `QActSite`), so inference-style callers never pay for mask
//! tensors they would immediately drop.

use crate::uq::QuantRange;
use crate::{GroupTermQuantizer, SdrEncoding, UniformQuantizer};

/// Zeroes the low `shift` bits of an integer level, sign-magnitude style —
/// the "leading bit positions" truncation of Fig. 2(b).
pub fn truncate_low_bits(v: i64, shift: u32) -> i64 {
    let mag = (v.unsigned_abs() >> shift) << shift;
    if v < 0 {
        -(mag as i64)
    } else {
        mag as i64
    }
}

/// Quantize-dequantize lookup table over every integer level of a
/// [`UniformQuantizer`].
///
/// The table always spans `-levels ..= levels`; unsigned quantizers simply
/// never index the negative half.
pub struct DataLut {
    uq: UniformQuantizer,
    lut: Vec<f32>,
    off: i64,
}

impl DataLut {
    fn from_level_map(uq: UniformQuantizer, f: impl Fn(i64) -> i64) -> Self {
        let levels = uq.levels();
        let scale = uq.scale();
        let lut = (-levels..=levels).map(|v| f(v) as f32 * scale).collect();
        DataLut {
            uq,
            lut,
            off: levels,
        }
    }

    /// LUT for per-value term quantization: UQ at `bits`/`clip` over `range`,
    /// then keep the leading `beta` terms of each value (group size 1).
    pub fn term_quantized(
        bits: u32,
        clip: f32,
        range: QuantRange,
        beta: usize,
        encoding: SdrEncoding,
    ) -> Self {
        let uq = match range {
            QuantRange::Symmetric => UniformQuantizer::symmetric(bits, clip),
            QuantRange::Unsigned => UniformQuantizer::unsigned(bits, clip),
        };
        let tq = GroupTermQuantizer::new(1, beta, encoding);
        Self::from_level_map(uq, |v| tq.quantize_one(v))
    }

    /// LUT for shared-scale UQ sub-models: UQ at the meta `bits`, then keep
    /// only the `kept_bits` leading bit positions of each level.
    pub fn bit_truncated(bits: u32, clip: f32, range: QuantRange, kept_bits: u32) -> Self {
        let uq = match range {
            QuantRange::Symmetric => UniformQuantizer::symmetric(bits, clip),
            QuantRange::Unsigned => UniformQuantizer::unsigned(bits, clip),
        };
        let shift = bits.saturating_sub(kept_bits);
        Self::from_level_map(uq, |v| truncate_low_bits(v, shift))
    }

    /// Fake-quantizes one value through the table.
    pub fn quantize_one(&self, v: f32) -> f32 {
        self.lut[(self.uq.quantize(v) + self.off) as usize]
    }

    /// Fake-quantizes `src` into `dst` (same length) through the table.
    // analyze: allow(panic, the length assert is the admission check and the
    // LUT covers every clamped level plus offset by construction)
    pub fn quantize_into(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "data LUT length mismatch");
        for (d, &v) in dst.iter_mut().zip(src.iter()) {
            *d = self.lut[(self.uq.quantize(v) + self.off) as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_low_bits_is_sign_symmetric() {
        for v in -40i64..=40 {
            for shift in 0..5 {
                assert_eq!(truncate_low_bits(-v, shift), -truncate_low_bits(v, shift));
                assert!(truncate_low_bits(v, shift).abs() <= v.abs());
            }
        }
    }

    #[test]
    fn term_lut_matches_direct_tq() {
        let bits = 5;
        let clip = 1.0;
        let lut = DataLut::term_quantized(bits, clip, QuantRange::Symmetric, 2, SdrEncoding::Naf);
        let uq = UniformQuantizer::symmetric(bits, clip);
        let tq = GroupTermQuantizer::new(1, 2, SdrEncoding::Naf);
        for i in 0..100 {
            let v = -1.2 + 0.024 * i as f32;
            let want = tq.quantize_one(uq.quantize(v)) as f32 * uq.scale();
            assert_eq!(lut.quantize_one(v), want, "v = {v}");
        }
    }

    #[test]
    fn bit_truncated_lut_matches_direct_truncation() {
        let bits = 5;
        let clip = 4.0;
        let lut = DataLut::bit_truncated(bits, clip, QuantRange::Unsigned, 2);
        let uq = UniformQuantizer::unsigned(bits, clip);
        for i in 0..100 {
            let v = 0.05 * i as f32;
            let want = truncate_low_bits(uq.quantize(v), 3) as f32 * uq.scale();
            assert_eq!(lut.quantize_one(v), want, "v = {v}");
        }
    }

    #[test]
    fn quantize_into_matches_quantize_one() {
        let lut = DataLut::term_quantized(8, 1.0, QuantRange::Symmetric, 3, SdrEncoding::Naf);
        let src: Vec<f32> = (0..64).map(|i| -1.5 + 0.05 * i as f32).collect();
        let mut dst = vec![0.0f32; src.len()];
        lut.quantize_into(&src, &mut dst);
        for (i, (&d, &s)) in dst.iter().zip(src.iter()).enumerate() {
            assert_eq!(d, lut.quantize_one(s), "index {i}");
        }
    }
}
