//! Telemetry hooks for the quantization kernels.
//!
//! The kernels in [`crate::tq`] run per weight group inside every quantized
//! forward pass, so instrumentation must be close to free. Two measures keep
//! it that way:
//!
//! * the whole module body is gated behind the `telemetry` cargo feature —
//!   without it every hook below is an empty `#[inline]` function and the
//!   `mri-telemetry` dependency is not even compiled;
//! * clock readings are stride-sampled per thread (1 in [`SAMPLE_STRIDE`]
//!   group quantizations), because an `Instant::now` pair per tiny group
//!   would rival the cost of the kernel itself. Counters are exact; only
//!   latency is sampled.

#[cfg(feature = "telemetry")]
mod active {
    use mri_telemetry::{Counter, Histogram};
    // lint: allow(raw-sync) — `static` initialisers must be const and loom's
    // cells are not; the hooks are pure metric handles, never model-checked.
    use std::sync::OnceLock;

    pub struct Hooks {
        pub sdr_values: Counter,
        pub sdr_terms: Counter,
        pub tq_groups: Counter,
        pub tq_terms_kept: Counter,
        pub tq_terms_dropped: Counter,
        pub tq_group_ns: Histogram,
    }

    pub fn hooks() -> &'static Hooks {
        static HOOKS: OnceLock<Hooks> = OnceLock::new();
        HOOKS.get_or_init(|| {
            let reg = mri_telemetry::global();
            Hooks {
                sdr_values: reg.counter("quant.sdr.values_encoded"),
                sdr_terms: reg.counter("quant.sdr.terms_emitted"),
                tq_groups: reg.counter("quant.tq.groups"),
                tq_terms_kept: reg.counter("quant.tq.terms_kept"),
                tq_terms_dropped: reg.counter("quant.tq.terms_dropped"),
                tq_group_ns: reg.histogram("quant.tq.group_quantize.ns"),
            }
        })
    }

    thread_local! {
        static TICK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }

    pub fn sampled_now() -> Option<std::time::Instant> {
        TICK.with(|t| {
            let v = t.get();
            t.set(v.wrapping_add(1));
            v.is_multiple_of(super::SAMPLE_STRIDE)
                // lint: allow(timing) — this *is* the sampled clock source
                // the kernels' latency instrumentation is built on.
                .then(std::time::Instant::now)
        })
    }
}

/// Per-thread stride between latency samples of the group-quantize kernel.
#[cfg(feature = "telemetry")]
pub(crate) const SAMPLE_STRIDE: u32 = 1024;

/// Records one pooled SDR expansion: `values` integers encoded into `terms`
/// signed power-of-two terms (counters `quant.sdr.values_encoded` /
/// `quant.sdr.terms_emitted`).
#[inline]
pub(crate) fn note_group_terms(values: usize, terms: usize) {
    #[cfg(feature = "telemetry")]
    {
        let h = active::hooks();
        h.sdr_values.add(values as u64);
        h.sdr_terms.add(terms as u64);
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (values, terms);
    }
}

/// Starts the (stride-sampled) latency timer for one group quantization.
#[inline]
pub(crate) fn tq_group_start() -> Option<std::time::Instant> {
    #[cfg(feature = "telemetry")]
    {
        active::sampled_now()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        None
    }
}

/// Records the outcome of one group quantization: exact kept/dropped term
/// counters plus the sampled latency histogram
/// (`quant.tq.group_quantize.ns`).
#[inline]
pub(crate) fn note_tq_group(kept: usize, dropped: usize, start: Option<std::time::Instant>) {
    #[cfg(feature = "telemetry")]
    {
        let h = active::hooks();
        h.tq_groups.inc();
        h.tq_terms_kept.add(kept as u64);
        h.tq_terms_dropped.add(dropped as u64);
        h.tq_group_ns.record_elapsed_ns(start);
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (kept, dropped, start);
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use crate::{GroupTermQuantizer, SdrEncoding};

    #[test]
    fn group_quantize_updates_global_counters() {
        let reg = mri_telemetry::global();
        let groups_before = reg.counter("quant.tq.groups").get();
        let kept_before = reg.counter("quant.tq.terms_kept").get();
        let dropped_before = reg.counter("quant.tq.terms_dropped").get();
        let values_before = reg.counter("quant.sdr.values_encoded").get();

        let q = GroupTermQuantizer::new(4, 8, SdrEncoding::Unsigned);
        // The Fig. 4 group: 10 terms total, 8 kept, 2 dropped.
        let out = q.quantize_i64(&[21, 6, 17, 11]);
        assert_eq!(out.kept.len(), 8);

        // Deltas are lower bounds: other tests may quantize concurrently.
        assert!(reg.counter("quant.tq.groups").get() > groups_before);
        assert!(reg.counter("quant.tq.terms_kept").get() >= kept_before + 8);
        assert!(reg.counter("quant.tq.terms_dropped").get() >= dropped_before + 2);
        assert!(reg.counter("quant.sdr.values_encoded").get() >= values_before + 4);
    }
}
