//! Signed power-of-two terms, the atoms of term quantization.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed power-of-two term `±2^exponent`.
///
/// Terms are the unit of computation in the mMAC: a multiplication between a
/// weight term and a data term is a single exponent addition.
///
/// # Examples
///
/// ```
/// use mri_quant::Term;
///
/// assert_eq!(Term::pos(4).value(), 16);
/// assert_eq!(Term::neg(2).value(), -4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Term {
    /// Power-of-two exponent (`e` in `±2^e`).
    pub exponent: u8,
    /// True for `-2^e`, false for `+2^e`.
    pub negative: bool,
}

impl Term {
    /// Creates a positive term `+2^exponent`.
    pub fn pos(exponent: u8) -> Self {
        Term {
            exponent,
            negative: false,
        }
    }

    /// Creates a negative term `-2^exponent`.
    pub fn neg(exponent: u8) -> Self {
        Term {
            exponent,
            negative: true,
        }
    }

    /// Numeric value of the term.
    ///
    /// # Panics
    ///
    /// Panics if `exponent >= 63` (would overflow `i64`).
    // analyze: allow(panic, packed stores cap exponents at the 3-bit field
    // so every serving-path term satisfies the assert by construction)
    pub fn value(&self) -> i64 {
        assert!(self.exponent < 63, "term exponent too large for i64");
        let v = 1i64 << self.exponent;
        if self.negative {
            -v
        } else {
            v
        }
    }

    /// Multiplies two terms: exponents add, signs xor.
    ///
    /// This is exactly what the mMAC's exponent adder computes.
    pub fn multiply(&self, other: &Term) -> Term {
        Term {
            exponent: self.exponent + other.exponent,
            negative: self.negative != other.negative,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}2^{}",
            if self.negative { "-" } else { "+" },
            self.exponent
        )
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Term {
    /// Orders by numeric value.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.value().cmp(&other.value())
    }
}

/// A term attributed to one value within a quantization group.
///
/// `index` records which of the `g` group members the term belongs to; the
/// hardware stores it in the *index memory* (paper §5.4, Fig. 17/18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupTerm {
    /// The power-of-two term.
    pub term: Term,
    /// Index of the owning value within its group (`0..g`).
    pub index: usize,
}

impl GroupTerm {
    /// Creates a group term.
    pub fn new(term: Term, index: usize) -> Self {
        GroupTerm { term, index }
    }
}

impl fmt::Display for GroupTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@w{}", self.term, self.index)
    }
}

/// Sums a slice of terms back into a value.
///
/// # Examples
///
/// ```
/// use mri_quant::{term_sum, Term};
///
/// // 27 = 2^5 - 2^2 - 2^0 (the paper's §2.4 example).
/// let terms = [Term::pos(5), Term::neg(2), Term::neg(0)];
/// assert_eq!(term_sum(&terms), 27);
/// ```
pub fn term_sum(terms: &[Term]) -> i64 {
    terms.iter().map(Term::value).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_sign() {
        assert_eq!(Term::pos(0).value(), 1);
        assert_eq!(Term::pos(10).value(), 1024);
        assert_eq!(Term::neg(3).value(), -8);
    }

    #[test]
    fn multiply_adds_exponents_and_xors_signs() {
        let a = Term::pos(3);
        let b = Term::neg(2);
        let c = a.multiply(&b);
        assert_eq!(c, Term::neg(5));
        assert_eq!(c.value(), a.value() * b.value());

        let d = b.multiply(&b);
        assert_eq!(d, Term::pos(4));
        assert_eq!(d.value(), 16);
    }

    #[test]
    fn ordering_by_numeric_value() {
        let mut v = vec![Term::neg(4), Term::pos(0), Term::neg(0), Term::pos(4)];
        v.sort();
        assert_eq!(
            v,
            vec![Term::neg(4), Term::neg(0), Term::pos(0), Term::pos(4)]
        );
    }

    #[test]
    fn term_sum_reconstructs_paper_example() {
        // 27 in NAF = 100-10-1.
        assert_eq!(term_sum(&[Term::pos(5), Term::neg(2), Term::neg(0)]), 27);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::pos(4).to_string(), "+2^4");
        assert_eq!(GroupTerm::new(Term::neg(3), 2).to_string(), "-2^3@w2");
    }
}
