//! Uniform quantization (UQ) with PACT-style clipping.
//!
//! Weights use a symmetric range `[-clip, +clip]` mapped onto signed
//! integers; activations (post-ReLU) use an unsigned range `[0, clip]`.
//! The clip value is a *learnable* parameter during training (PACT, citation 10 in
//! the paper); this module provides the pure quantization math, while the
//! training crate owns the gradient flow.

use serde::{Deserialize, Serialize};

/// Whether a quantizer covers a symmetric signed range or an unsigned range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantRange {
    /// `[-clip, +clip]` mapped to `[-(2^(b-1) - 1), 2^(b-1) - 1]`.
    Symmetric,
    /// `[0, clip]` mapped to `[0, 2^b - 1]`.
    Unsigned,
}

/// A `bits`-bit uniform quantizer with clipping threshold `clip`.
///
/// # Examples
///
/// ```
/// use mri_quant::UniformQuantizer;
///
/// let q = UniformQuantizer::symmetric(5, 1.0);
/// assert_eq!(q.levels(), 15);            // 2^4 - 1 on each side
/// assert_eq!(q.quantize(1.0), 15);
/// assert_eq!(q.quantize(-2.0), -15);     // clipped
/// assert!((q.dequantize(15) - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformQuantizer {
    bits: u32,
    clip: f32,
    range: QuantRange,
}

impl UniformQuantizer {
    /// Symmetric quantizer for weights.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=16` or `clip <= 0`.
    pub fn symmetric(bits: u32, clip: f32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        assert!(clip > 0.0, "clip must be positive");
        UniformQuantizer {
            bits,
            clip,
            range: QuantRange::Symmetric,
        }
    }

    /// Unsigned quantizer for non-negative activations.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=16` or `clip <= 0`.
    pub fn unsigned(bits: u32, clip: f32) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(clip > 0.0, "clip must be positive");
        UniformQuantizer {
            bits,
            clip,
            range: QuantRange::Unsigned,
        }
    }

    /// Bit width `b`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Clipping threshold.
    pub fn clip(&self) -> f32 {
        self.clip
    }

    /// The range convention.
    pub fn range(&self) -> QuantRange {
        self.range
    }

    /// Largest representable integer level.
    pub fn levels(&self) -> i64 {
        match self.range {
            QuantRange::Symmetric => (1i64 << (self.bits - 1)) - 1,
            QuantRange::Unsigned => (1i64 << self.bits) - 1,
        }
    }

    /// The real-valued step between adjacent levels.
    // analyze: allow(panic, float division cannot trap and levels is at
    // least one because bits is validated in 1..=16 at construction)
    pub fn scale(&self) -> f32 {
        self.clip / self.levels() as f32
    }

    /// Quantizes a real value to its integer level (clipping included).
    // analyze: allow(panic, float division cannot trap -- scale is finite
    // and positive because clip is validated positive at construction)
    pub fn quantize(&self, x: f32) -> i64 {
        let l = self.levels() as f32;
        let v = x / self.scale();
        let clamped = match self.range {
            QuantRange::Symmetric => v.clamp(-l, l),
            QuantRange::Unsigned => v.clamp(0.0, l),
        };
        clamped.round() as i64
    }

    /// Maps an integer level back to its real value.
    pub fn dequantize(&self, q: i64) -> f32 {
        q as f32 * self.scale()
    }

    /// Quantize-dequantize in one step: the "fake quantization" used in
    /// quantization-aware training forward passes.
    pub fn fake_quantize(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Quantizes a slice into integer levels.
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i64> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Dequantizes a slice of integer levels.
    pub fn dequantize_slice(&self, qs: &[i64]) -> Vec<f32> {
        qs.iter().map(|&q| self.dequantize(q)).collect()
    }
}

/// Gradient of the PACT clip parameter for one element.
///
/// PACT's straight-through rule: the activation gradient flows to the clip
/// parameter only where the input saturated (|x| ≥ clip for symmetric,
/// x ≥ clip for unsigned).
pub fn pact_clip_grad(x: f32, clip: f32, range: QuantRange, upstream: f32) -> f32 {
    match range {
        QuantRange::Unsigned => {
            if x >= clip {
                upstream
            } else {
                0.0
            }
        }
        QuantRange::Symmetric => {
            if x >= clip {
                upstream
            } else if x <= -clip {
                -upstream
            } else {
                0.0
            }
        }
    }
}

/// Straight-through estimator mask: 1 inside the clip range, 0 where the
/// input saturated (the gradient there goes to the clip parameter instead).
pub fn ste_mask(x: f32, clip: f32, range: QuantRange) -> f32 {
    match range {
        QuantRange::Unsigned => {
            if (0.0..clip).contains(&x) {
                1.0
            } else {
                0.0
            }
        }
        QuantRange::Symmetric => {
            if x.abs() < clip {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_5bit_levels() {
        let q = UniformQuantizer::symmetric(5, 1.0);
        assert_eq!(q.levels(), 15);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(0.4), 6); // 0.4 / (1/15) = 6.0
        assert_eq!(q.quantize(-1.5), -15);
    }

    #[test]
    fn unsigned_5bit_levels() {
        let q = UniformQuantizer::unsigned(5, 2.0);
        assert_eq!(q.levels(), 31);
        assert_eq!(q.quantize(2.0), 31);
        assert_eq!(q.quantize(-0.3), 0);
        assert!((q.dequantize(31) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fake_quantize_error_bounded_by_half_step() {
        let q = UniformQuantizer::symmetric(5, 1.0);
        for i in -100..=100 {
            let x = i as f32 / 100.0;
            let err = (q.fake_quantize(x) - x).abs();
            assert!(err <= q.scale() / 2.0 + 1e-6, "error {err} at {x}");
        }
    }

    #[test]
    fn quantize_is_monotone() {
        let q = UniformQuantizer::symmetric(4, 1.0);
        let mut prev = i64::MIN;
        for i in -20..=20 {
            let v = q.quantize(i as f32 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn slice_round_trip() {
        let q = UniformQuantizer::unsigned(8, 1.0);
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let qs = q.quantize_slice(&xs);
        let back = q.dequantize_slice(&qs);
        for (x, b) in xs.iter().zip(back.iter()) {
            assert!((x - b).abs() < q.scale());
        }
    }

    #[test]
    fn pact_gradient_routing() {
        // Inside the range: gradient to data, none to clip.
        assert_eq!(ste_mask(0.3, 1.0, QuantRange::Unsigned), 1.0);
        assert_eq!(pact_clip_grad(0.3, 1.0, QuantRange::Unsigned, 2.0), 0.0);
        // Saturated: gradient to clip, none to data.
        assert_eq!(ste_mask(1.5, 1.0, QuantRange::Unsigned), 0.0);
        assert_eq!(pact_clip_grad(1.5, 1.0, QuantRange::Unsigned, 2.0), 2.0);
        // Symmetric negative saturation flips the sign.
        assert_eq!(pact_clip_grad(-1.5, 1.0, QuantRange::Symmetric, 2.0), -2.0);
    }

    #[test]
    #[should_panic(expected = "clip must be positive")]
    fn rejects_nonpositive_clip() {
        UniformQuantizer::symmetric(5, 0.0);
    }
}
