//! Term quantization (TQ) and nested multi-resolution weight groups.
//!
//! TQ quantizes a *group* of `g` values by pooling all their power-of-two
//! terms and keeping only the leading `α` (paper §3). Because the kept terms
//! of a smaller budget are a prefix of the kept terms of any larger budget,
//! one stored term sequence serves every resolution — the storage- and
//! computation-sharing property that the whole paper builds on (§4.1, §5.4).

use crate::sdr::{self, SdrEncoding};
use crate::GroupTerm;
#[cfg(test)]
use crate::Term;
use serde::{Deserialize, Serialize};

/// Canonical ordering of a group's terms: exponent descending, then owning
/// value index ascending, then positive before negative (for determinism).
///
/// This ordering reproduces the paper's worked examples exactly: for the
/// group `[21, 6, 17, 11]` it yields `[16, 0, 16, 0]` at `α = 2` (§4.1) and
/// the final two-term increment `{2^1@w4, 2^0@w1}` of Fig. 17.
fn canonical_order(a: &GroupTerm, b: &GroupTerm) -> std::cmp::Ordering {
    b.term
        .exponent
        .cmp(&a.term.exponent)
        .then(a.index.cmp(&b.index))
        .then(a.term.negative.cmp(&b.term.negative))
}

/// Expands each value of a group into terms and returns them in canonical
/// order (most significant first).
pub fn group_terms(values: &[i64], encoding: SdrEncoding) -> Vec<GroupTerm> {
    let mut terms: Vec<GroupTerm> = values
        .iter()
        .enumerate()
        .flat_map(|(i, &v)| {
            sdr::encode(v, encoding)
                .into_iter()
                .map(move |t| GroupTerm::new(t, i))
        })
        .collect();
    terms.sort_by(canonical_order);
    crate::tele::note_group_terms(values.len(), terms.len());
    terms
}

/// The effective term budget of a (possibly partial) group of `chunk_len`
/// values under a per-`group_size` budget: full groups get the budget as-is,
/// tails get it scaled proportionally (rounding up), exactly as
/// [`GroupTermQuantizer::quantize_slice`] has always done.
pub(crate) fn scaled_budget(budget: usize, group_size: usize, chunk_len: usize) -> usize {
    if chunk_len == group_size {
        budget
    } else {
        budget.saturating_mul(chunk_len).div_ceil(group_size)
    }
}

/// Result of term-quantizing one group of values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedGroup {
    /// The reconstructed (term-quantized) values.
    pub values: Vec<i64>,
    /// The terms that were kept, in canonical order.
    pub kept: Vec<GroupTerm>,
    /// The terms that were dropped, in canonical order.
    pub dropped: Vec<GroupTerm>,
}

impl QuantizedGroup {
    /// Number of kept terms (`<= α`).
    pub fn term_count(&self) -> usize {
        self.kept.len()
    }

    /// Sum of squared errors against the original values.
    pub fn sq_error(&self, original: &[i64]) -> f64 {
        self.values
            .iter()
            .zip(original.iter())
            .map(|(&q, &o)| {
                let d = (q - o) as f64;
                d * d
            })
            .sum()
    }
}

/// Term quantizer for groups of `g` values with a term budget `α`.
///
/// For data values the paper uses `g = 1` and budget `β`; the same type
/// covers both cases.
///
/// # Examples
///
/// ```
/// use mri_quant::{GroupTermQuantizer, SdrEncoding};
///
/// // Data TQ with β = 2 (paper §3.2): 19 = 10011₂ -> 18 = 10010₂.
/// let q = GroupTermQuantizer::new(1, 2, SdrEncoding::Unsigned);
/// assert_eq!(q.quantize_i64(&[19]).values, vec![18]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupTermQuantizer {
    group_size: usize,
    budget: usize,
    encoding: SdrEncoding,
}

impl GroupTermQuantizer {
    /// Creates a quantizer for groups of `group_size` values keeping at most
    /// `budget` terms per group.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn new(group_size: usize, budget: usize, encoding: SdrEncoding) -> Self {
        assert!(group_size > 0, "group size must be positive");
        GroupTermQuantizer {
            group_size,
            budget,
            encoding,
        }
    }

    /// The group size `g`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The per-group term budget `α` (or `β` when `g = 1`).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The encoding values are expanded into before truncation.
    pub fn encoding(&self) -> SdrEncoding {
        self.encoding
    }

    /// Term-quantizes one group of integers.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != group_size`.
    pub fn quantize_i64(&self, values: &[i64]) -> QuantizedGroup {
        assert_eq!(values.len(), self.group_size, "group length mismatch");
        let start = crate::tele::tq_group_start();
        let terms = group_terms(values, self.encoding);
        let cut = self.budget.min(terms.len());
        let (kept, dropped) = terms.split_at(cut);
        let mut out = vec![0i64; values.len()];
        for t in kept {
            out[t.index] += t.term.value();
        }
        crate::tele::note_tq_group(kept.len(), dropped.len(), start);
        QuantizedGroup {
            values: out,
            kept: kept.to_vec(),
            dropped: dropped.to_vec(),
        }
    }

    /// Term-quantizes a whole slice, group by group, writing quantized
    /// integers into a new vector. The final partial group (if any) is
    /// quantized with a proportionally scaled budget.
    ///
    /// This is the values-only hot path: unlike [`GroupTermQuantizer::quantize_i64`]
    /// it never materialises kept/dropped term vectors.
    pub fn quantize_slice(&self, values: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; values.len()];
        self.quantize_slice_into(values, &mut out);
        out
    }

    /// Values-only slice quantization into a caller-provided buffer (no
    /// per-group allocations beyond the pooled term scratch).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != values.len()`.
    pub fn quantize_slice_into(&self, values: &[i64], out: &mut [i64]) {
        assert_eq!(out.len(), values.len(), "output length mismatch");
        for (chunk, out_chunk) in values
            .chunks(self.group_size)
            .zip(out.chunks_mut(self.group_size))
        {
            let b = scaled_budget(self.budget, self.group_size, chunk.len());
            quantize_group_into(chunk, b, self.encoding, out_chunk);
        }
    }

    /// Term-quantizes a single value with `g = 1` semantics, returning just
    /// the reconstructed integer (the data-TQ lookup-table builder's path).
    ///
    /// # Panics
    ///
    /// Panics if `group_size != 1`.
    pub fn quantize_one(&self, value: i64) -> i64 {
        assert_eq!(self.group_size, 1, "quantize_one requires group size 1");
        let mut out = [0i64; 1];
        quantize_group_into(&[value], self.budget, self.encoding, &mut out);
        out[0]
    }

    /// Total number of kept terms across a slice (the real, not budgeted,
    /// term count — used for term-pair accounting).
    ///
    /// Counting requires one SDR encode per group; when a
    /// [`MultiResSlice`] for the same values is already cached, prefer
    /// [`MultiResSlice::kept_terms_at`], which answers from the stored term
    /// sequence without re-encoding.
    pub fn kept_terms_in_slice(&self, values: &[i64]) -> usize {
        let mut n = 0;
        for chunk in values.chunks(self.group_size) {
            let b = scaled_budget(self.budget, self.group_size, chunk.len());
            let terms = group_terms(chunk, self.encoding);
            n += b.min(terms.len());
        }
        n
    }
}

/// Values-only term quantization of one group: pools the group's terms,
/// keeps the leading `budget`, and accumulates the reconstruction directly
/// into `out` — no kept/dropped vectors are built.
fn quantize_group_into(values: &[i64], budget: usize, encoding: SdrEncoding, out: &mut [i64]) {
    debug_assert_eq!(values.len(), out.len());
    let start = crate::tele::tq_group_start();
    let terms = group_terms(values, encoding);
    let cut = budget.min(terms.len());
    out.fill(0);
    for t in &terms[..cut] {
        out[t.index] += t.term.value();
    }
    crate::tele::note_tq_group(cut, terms.len() - cut, start);
}

/// A multi-resolution weight group: the canonical term sequence of the
/// *largest* sub-model, from which every smaller budget is a prefix.
///
/// This is the in-memory form of the paper's Fig. 7: the same group supports
/// budgets 2, 4, 6, 8, … by truncation, and consecutive budgets differ by
/// small *increments* that the storage layer places in successive memory
/// entries (Fig. 17).
///
/// # Examples
///
/// ```
/// use mri_quant::{MultiResGroup, SdrEncoding};
///
/// let g = MultiResGroup::from_values(&[21, 6, 17, 11], 8, SdrEncoding::Unsigned);
/// assert_eq!(g.values_at(2), vec![16, 0, 16, 0]);   // α = 2 (Fig. 7 blue)
/// assert_eq!(g.values_at(8), vec![21, 6, 16, 10]);  // α = 8 (Fig. 7 red)
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiResGroup {
    terms: Vec<GroupTerm>,
    group_size: usize,
}

impl MultiResGroup {
    /// Builds the group from raw integers, keeping at most `max_budget`
    /// terms (the largest sub-model's budget).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[i64], max_budget: usize, encoding: SdrEncoding) -> Self {
        assert!(!values.is_empty(), "empty group");
        let mut terms = group_terms(values, encoding);
        terms.truncate(max_budget);
        MultiResGroup {
            terms,
            group_size: values.len(),
        }
    }

    /// Builds directly from a term sequence already in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if any term's index is out of range or the sequence is not in
    /// canonical order.
    pub fn from_terms(terms: Vec<GroupTerm>, group_size: usize) -> Self {
        for w in terms.windows(2) {
            assert!(
                canonical_order(&w[0], &w[1]) != std::cmp::Ordering::Greater,
                "terms not in canonical order"
            );
        }
        assert!(
            terms.iter().all(|t| t.index < group_size),
            "term index out of range"
        );
        MultiResGroup { terms, group_size }
    }

    /// The group size `g`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The full (largest-budget) term sequence.
    pub fn terms(&self) -> &[GroupTerm] {
        &self.terms
    }

    /// Number of stored terms (the largest budget actually present).
    pub fn max_budget(&self) -> usize {
        self.terms.len()
    }

    /// The terms of the sub-model with term budget `budget` — always a
    /// prefix of the stored sequence.
    pub fn terms_at(&self, budget: usize) -> &[GroupTerm] {
        &self.terms[..budget.min(self.terms.len())]
    }

    /// Reconstructs the group's values at the given budget.
    pub fn values_at(&self, budget: usize) -> Vec<i64> {
        let mut out = vec![0i64; self.group_size];
        for t in self.terms_at(budget) {
            out[t.index] += t.term.value();
        }
        out
    }

    /// Splits the term sequence into the increments between consecutive
    /// budgets (Fig. 17's memory entries).
    ///
    /// `budgets` must be strictly increasing; the first increment covers
    /// `0..budgets[0]`, the next `budgets[0]..budgets[1]`, and so on.
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is not strictly increasing.
    pub fn increments(&self, budgets: &[usize]) -> Vec<&[GroupTerm]> {
        let mut out = Vec::with_capacity(budgets.len());
        let mut prev: Option<usize> = None;
        for &b in budgets {
            assert!(
                prev.is_none_or(|p| b > p),
                "budgets must be strictly increasing"
            );
            let lo = prev.unwrap_or(0).min(self.terms.len());
            let hi = b.min(self.terms.len());
            out.push(&self.terms[lo..hi]);
            prev = Some(b);
        }
        out
    }

    /// Verifies the nesting property: every value of the sub-model at
    /// `small` is obtainable by truncating the sub-model at `large`.
    pub fn is_nested(&self, small: usize, large: usize) -> bool {
        small <= large
            && self.terms_at(small) == &self.terms_at(large)[..small.min(self.terms.len())]
    }
}

/// The canonical term sequences of a whole *slice* of values, grouped like
/// [`GroupTermQuantizer::quantize_slice`] groups them, encoded **once** at
/// the largest budget and served at any smaller budget by prefix truncation.
///
/// This is [`MultiResGroup`] scaled from one group to a weight row: the
/// in-memory form of the paper's §4.1/Fig. 17 term reuse, and the payload of
/// the training-time weight-term cache. For every `alpha <= max_alpha`,
/// [`MultiResSlice::values_at`] is bit-identical to
/// `GroupTermQuantizer::new(group_size, alpha, encoding).quantize_slice(..)`
/// on the original values — no re-encode, no re-sort. Partial tail groups
/// carry the same proportionally scaled budget as the direct path.
///
/// # Examples
///
/// ```
/// use mri_quant::{GroupTermQuantizer, MultiResSlice, SdrEncoding};
///
/// let values = [21, 6, 17, 11, 3, 3];
/// let cached = MultiResSlice::encode(&values, 4, usize::MAX, SdrEncoding::Unsigned);
/// let direct = GroupTermQuantizer::new(4, 4, SdrEncoding::Unsigned).quantize_slice(&values);
/// assert_eq!(cached.values_at(4), direct);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiResSlice {
    /// Per-group canonical term sequences, concatenated in group order.
    terms: Vec<GroupTerm>,
    /// Cumulative term counts: group `i` owns `ends[i-1]..ends[i]` (with
    /// `ends[-1] = 0`).
    ends: Vec<u32>,
    /// Number of encoded values.
    len: usize,
    /// The grouping `g` (groups never span `group_size` boundaries).
    group_size: usize,
    /// The budget the slice was encoded at; larger budgets cannot be served.
    max_alpha: usize,
    /// The encoding the values were expanded with.
    encoding: SdrEncoding,
}

impl MultiResSlice {
    /// Encodes a slice once at `max_alpha` terms per full group (tails
    /// scaled). Pass `usize::MAX` to store every term, which lets the slice
    /// serve *any* budget.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn encode(
        values: &[i64],
        group_size: usize,
        max_alpha: usize,
        encoding: SdrEncoding,
    ) -> Self {
        assert!(group_size > 0, "group size must be positive");
        let mut terms = Vec::new();
        let mut ends = Vec::with_capacity(values.len().div_ceil(group_size));
        for chunk in values.chunks(group_size) {
            let budget = scaled_budget(max_alpha, group_size, chunk.len());
            let mut group = group_terms(chunk, encoding);
            group.truncate(budget);
            terms.extend_from_slice(&group);
            ends.push(terms.len() as u32);
        }
        MultiResSlice {
            terms,
            ends,
            len: values.len(),
            group_size,
            max_alpha,
            encoding,
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slice holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The grouping `g` the slice was encoded with.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The budget the slice was encoded at (upper bound on servable `α`).
    pub fn max_alpha(&self) -> usize {
        self.max_alpha
    }

    /// The encoding the values were expanded with.
    pub fn encoding(&self) -> SdrEncoding {
        self.encoding
    }

    /// Total number of stored terms.
    pub fn stored_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates `(group_value_range, group_terms)` pairs.
    // analyze: allow(panic, the ends table is monotone and bounded by the
    // term count by construction of encode so every window is in range)
    pub(crate) fn groups(&self) -> impl Iterator<Item = (usize, &[GroupTerm])> {
        self.ends.iter().enumerate().map(move |(g, &end)| {
            let start = if g == 0 { 0 } else { self.ends[g - 1] as usize };
            let lo = g * self.group_size;
            let glen = self.group_size.min(self.len - lo);
            (glen, &self.terms[start..end as usize])
        })
    }

    /// Reconstructs the quantized integers at budget `alpha` by prefix
    /// truncation of every group's stored sequence.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha` (the prefix property only runs
    /// downward; re-encode to serve a larger budget).
    pub fn values_at(&self, alpha: usize) -> Vec<i64> {
        let mut out = vec![0i64; self.len];
        self.values_at_into(alpha, &mut out);
        out
    }

    /// [`MultiResSlice::values_at`] into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha` or `out.len() != len()`.
    pub fn values_at_into(&self, alpha: usize, out: &mut [i64]) {
        assert!(
            alpha <= self.max_alpha,
            "budget {alpha} exceeds encoded {}",
            self.max_alpha
        );
        assert_eq!(out.len(), self.len, "output length mismatch");
        out.fill(0);
        let mut lo = 0usize;
        for (glen, terms) in self.groups() {
            let keep = scaled_budget(alpha, self.group_size, glen).min(terms.len());
            for t in &terms[..keep] {
                out[lo + t.index] += t.term.value();
            }
            lo += glen;
        }
    }

    /// Writes `values_at(alpha)[i] as f32 * scale` into `out` — the
    /// fake-quantization serving path, fused so no intermediate integer
    /// buffer is allocated.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha` or `out.len() != len()`.
    // analyze: allow(panic, budget and output length are asserted on entry
    // and term indices are below glen by the encode invariant)
    pub fn write_scaled(&self, alpha: usize, scale: f32, out: &mut [f32]) {
        assert!(
            alpha <= self.max_alpha,
            "budget {alpha} exceeds encoded {}",
            self.max_alpha
        );
        assert_eq!(out.len(), self.len, "output length mismatch");
        let mut stack = [0i64; MAX_GROUP_STACK];
        let mut heap = Vec::new();
        let mut lo = 0usize;
        for (glen, terms) in self.groups() {
            let keep = scaled_budget(alpha, self.group_size, glen).min(terms.len());
            let ints: &mut [i64] = if glen <= MAX_GROUP_STACK {
                &mut stack[..glen]
            } else {
                heap.resize(glen, 0);
                &mut heap[..glen]
            };
            ints.fill(0);
            for t in &terms[..keep] {
                ints[t.index] += t.term.value();
            }
            for (o, &v) in out[lo..lo + glen].iter_mut().zip(ints.iter()) {
                *o = v as f32 * scale;
            }
            lo += glen;
        }
    }

    /// The number of terms actually kept at budget `alpha` (the real, not
    /// budgeted, count) — [`GroupTermQuantizer::kept_terms_in_slice`]
    /// answered from the cache, without re-encoding.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > max_alpha`.
    pub fn kept_terms_at(&self, alpha: usize) -> usize {
        assert!(
            alpha <= self.max_alpha,
            "budget {alpha} exceeds encoded {}",
            self.max_alpha
        );
        self.groups()
            .map(|(glen, terms)| scaled_budget(alpha, self.group_size, glen).min(terms.len()))
            .sum()
    }
}

/// Stack buffer size for group reconstruction in [`MultiResSlice::write_scaled`];
/// groups at or below this size (all of the paper's settings use `g = 16`)
/// reconstruct without heap allocation.
pub(crate) const MAX_GROUP_STACK: usize = 32;

/// Average TQ quantization error (RMSE) for groups drawn from `samples`,
/// used to reproduce Fig. 5(b).
///
/// `samples` are reals; they are first uniform-quantized to `bits` bits with
/// the given symmetric `clip`, then TQ is applied with `budget_per_value ×
/// group_size` terms per group, and the error is measured back in real space.
///
/// # Panics
///
/// Panics if `group_size == 0` or `bits == 0`.
pub fn tq_rmse(
    samples: &[f32],
    group_size: usize,
    budget_per_value: f64,
    bits: u32,
    clip: f32,
    encoding: SdrEncoding,
) -> f64 {
    assert!(group_size > 0 && bits > 0, "invalid parameters");
    let q = crate::uq::UniformQuantizer::symmetric(bits, clip);
    let budget = (budget_per_value * group_size as f64).round() as usize;
    let tq = GroupTermQuantizer::new(group_size, budget, encoding);
    let mut se = 0.0f64;
    let mut n = 0usize;
    for chunk in samples.chunks_exact(group_size) {
        let ints: Vec<i64> = chunk.iter().map(|&x| q.quantize(x)).collect();
        let tqd = tq.quantize_i64(&ints);
        for (&orig, &qi) in chunk.iter().zip(tqd.values.iter()) {
            let back = q.dequantize(qi);
            se += f64::from((back - orig) * (back - orig));
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (se / n as f64).sqrt()
    }
}

/// Term-quantizes a group of *real* values directly: each magnitude is
/// expanded greedily into powers of two (exponents may be negative), the
/// group's terms are pooled, and only the `budget` largest are kept.
///
/// This is the idealised TQ of the paper's Fig. 5(b) error study, where no
/// prior uniform quantization bounds the exponent range.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn tq_real_group(values: &[f32], budget: usize) -> Vec<f32> {
    assert!(!values.is_empty(), "empty group");
    const DEPTH: usize = 24;
    // (magnitude, value index), expanded greedily most-significant first.
    let mut terms: Vec<(f32, usize)> = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        let mut rem = v.abs();
        for _ in 0..DEPTH {
            if rem <= 0.0 {
                break;
            }
            let e = rem.log2().floor();
            let t = e.exp2();
            terms.push((t, i));
            rem -= t;
        }
    }
    terms.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0f32; values.len()];
    for &(t, i) in terms.iter().take(budget) {
        out[i] += t;
    }
    for (o, &v) in out.iter_mut().zip(values.iter()) {
        if v < 0.0 {
            *o = -*o;
        }
    }
    out
}

/// RMSE of [`tq_real_group`] at `budget_per_value` average terms per value
/// over `samples`, as a function of the group size (Fig. 5(b)).
pub fn tq_real_rmse(samples: &[f32], group_size: usize, budget_per_value: f64) -> f64 {
    let budget = (budget_per_value * group_size as f64).round() as usize;
    let mut se = 0.0f64;
    let mut n = 0usize;
    for chunk in samples.chunks_exact(group_size) {
        let q = tq_real_group(chunk, budget);
        for (&orig, &qq) in chunk.iter().zip(q.iter()) {
            se += f64::from((qq - orig) * (qq - orig));
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (se / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_GROUP: [i64; 4] = [21, 6, 17, 11];

    #[test]
    fn tq_real_group_exact_at_generous_budget() {
        let vals = [0.75f32, -0.375, 0.5, 0.15625];
        let q = tq_real_group(&vals, 64);
        for (a, b) in q.iter().zip(vals.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn tq_real_group_keeps_leading_terms() {
        // [0.75, 0.125] with budget 2: terms 0.5, 0.25, 0.125 -> keep 0.5 + 0.25.
        let q = tq_real_group(&[0.75, 0.125], 2);
        assert_eq!(q, vec![0.75, 0.0]);
    }

    #[test]
    fn tq_real_rmse_decreases_with_group_size() {
        let mut seed = 7u64;
        let mut next = || {
            let mut s = 0.0f32;
            for _ in 0..12 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                s += (seed >> 40) as f32 / (1u64 << 24) as f32;
            }
            (s - 6.0) * 0.03
        };
        let samples: Vec<f32> = (0..12_000).map(|_| next()).collect();
        let e1 = tq_real_rmse(&samples, 1, 1.0);
        let e4 = tq_real_rmse(&samples, 4, 1.0);
        let e12 = tq_real_rmse(&samples, 12, 1.0);
        // Fig. 5(b)'s shape: most of the improvement arrives by g = 4.
        assert!(e4 < e1 && e12 < e4, "not monotone: {e1} {e4} {e12}");
        assert!(
            (e1 - e4) > 0.5 * (e1 - e12),
            "drop not front-loaded: {e1} {e4} {e12}"
        );
    }

    #[test]
    fn figure4_group_tq_budget8() {
        // Fig. 4: 10 total terms, budget 8 -> drop two 2^0 terms.
        let q = GroupTermQuantizer::new(4, 8, SdrEncoding::Unsigned);
        let out = q.quantize_i64(&PAPER_GROUP);
        assert_eq!(out.values, vec![21, 6, 16, 10]);
        assert_eq!(out.term_count(), 8);
        assert_eq!(out.dropped.len(), 2);
        assert!(out.dropped.iter().all(|t| t.term.exponent == 0));
    }

    #[test]
    fn figure7_all_budgets_nested() {
        let g = MultiResGroup::from_values(&PAPER_GROUP, 8, SdrEncoding::Unsigned);
        assert_eq!(g.values_at(2), vec![16, 0, 16, 0]);
        assert_eq!(g.values_at(4), vec![20, 0, 16, 8]);
        assert_eq!(g.values_at(6), vec![20, 6, 16, 8]);
        assert_eq!(g.values_at(8), vec![21, 6, 16, 10]);
        for (s, l) in [(2, 4), (4, 6), (6, 8), (2, 8)] {
            assert!(g.is_nested(s, l));
        }
    }

    #[test]
    fn figure17_final_increment_is_w1_and_w4() {
        // "In increasing the 6-term budget to the 8-term budget resolution, we
        //  use a two-term increment composed of 2^0 and 2^1 for w1 and w4."
        let g = MultiResGroup::from_values(&PAPER_GROUP, 8, SdrEncoding::Unsigned);
        let incs = g.increments(&[2, 4, 6, 8]);
        assert_eq!(incs.len(), 4);
        let last = incs[3];
        assert_eq!(last.len(), 2);
        assert_eq!(last[0], GroupTerm::new(Term::pos(1), 3)); // 2^1 for w4
        assert_eq!(last[1], GroupTerm::new(Term::pos(0), 0)); // 2^0 for w1
    }

    #[test]
    fn data_tq_beta2_truncates_19_to_18() {
        let q = GroupTermQuantizer::new(1, 2, SdrEncoding::Unsigned);
        assert_eq!(q.quantize_i64(&[19]).values, vec![18]);
    }

    #[test]
    fn data_tq_sdr_example_23() {
        // Fig. 15's x = 23 with β = 2 quantizes to 24. (The figure writes 23
        // as 2^4 + 2^3 - 2^0; NAF gives 2^5 - 2^3 - 2^0 — either way the two
        // leading terms sum to 24.)
        let q = GroupTermQuantizer::new(1, 2, SdrEncoding::Naf);
        assert_eq!(q.quantize_i64(&[23]).values, vec![24]);
    }

    #[test]
    fn budget_zero_gives_all_zero() {
        let q = GroupTermQuantizer::new(4, 0, SdrEncoding::Naf);
        let out = q.quantize_i64(&PAPER_GROUP);
        assert_eq!(out.values, vec![0, 0, 0, 0]);
        assert!(out.kept.is_empty());
    }

    #[test]
    fn generous_budget_is_lossless() {
        let q = GroupTermQuantizer::new(4, 64, SdrEncoding::Naf);
        assert_eq!(q.quantize_i64(&PAPER_GROUP).values, PAPER_GROUP.to_vec());
    }

    #[test]
    fn negative_values_under_naf() {
        let q = GroupTermQuantizer::new(2, 3, SdrEncoding::Naf);
        let out = q.quantize_i64(&[-13, 5]);
        // -13 NAF: -16 + 4 - 1; 5 NAF: 4 + 1. Terms sorted by exponent:
        // (-16)@0, 4@0, 4@1, 1@1, (-1)@0 — keep 3 -> [-12, 4].
        assert_eq!(out.values, vec![-12, 4]);
    }

    #[test]
    fn quantize_slice_handles_partial_tail() {
        let q = GroupTermQuantizer::new(4, 4, SdrEncoding::Unsigned);
        // Six values: one full group of 4 (budget 4) + tail of 2 (budget 2).
        let out = q.quantize_slice(&[21, 6, 17, 11, 3, 3]);
        assert_eq!(out.len(), 6);
        assert_eq!(&out[..4], &[20, 0, 16, 8]);
        // Tail [3, 3] = terms 2,1,2,1; budget 2 keeps both 2^1 -> [2, 2].
        assert_eq!(&out[4..], &[2, 2]);
    }

    #[test]
    fn kept_terms_never_exceed_budget() {
        let q = GroupTermQuantizer::new(4, 5, SdrEncoding::Naf);
        let vals: Vec<i64> = (0..32).collect();
        assert!(q.kept_terms_in_slice(&vals) <= 5 * 8);
    }

    #[test]
    fn tq_error_decreases_with_group_size() {
        // The Fig. 5(b) trend: at one term/value average, grouping cuts RMSE.
        let mut seed = 99u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Roughly normal via sum of uniforms.
            let mut s = 0.0f32;
            for _ in 0..12 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                s += (seed >> 40) as f32 / (1u64 << 24) as f32;
            }
            (s - 6.0) * 0.03
        };
        let samples: Vec<f32> = (0..4800).map(|_| next()).collect();
        let e1 = tq_rmse(&samples, 1, 1.0, 5, 0.09, SdrEncoding::Naf);
        let e4 = tq_rmse(&samples, 4, 1.0, 5, 0.09, SdrEncoding::Naf);
        let e12 = tq_rmse(&samples, 12, 1.0, 5, 0.09, SdrEncoding::Naf);
        assert!(e4 < e1, "g=4 ({e4}) should beat g=1 ({e1})");
        assert!(
            e12 <= e4 * 1.05,
            "g=12 ({e12}) should not be much worse than g=4 ({e4})"
        );
    }

    #[test]
    fn increments_concatenate_to_prefix() {
        let g = MultiResGroup::from_values(&PAPER_GROUP, 8, SdrEncoding::Unsigned);
        let incs = g.increments(&[2, 4, 6, 8]);
        let concat: Vec<GroupTerm> = incs.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(concat.as_slice(), g.terms());
    }

    #[test]
    #[should_panic(expected = "group length mismatch")]
    fn wrong_group_length_panics() {
        GroupTermQuantizer::new(4, 8, SdrEncoding::Naf).quantize_i64(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn increments_reject_repeated_zero_budgets() {
        // [0, 0, 4] is not strictly increasing; the old assert let the
        // repeated zero through and produced duplicate empty increments.
        let g = MultiResGroup::from_values(&PAPER_GROUP, 8, SdrEncoding::Unsigned);
        let _ = g.increments(&[0, 0, 4]);
    }

    #[test]
    fn increments_allow_leading_zero_budget() {
        let g = MultiResGroup::from_values(&PAPER_GROUP, 8, SdrEncoding::Unsigned);
        let incs = g.increments(&[0, 4, 8]);
        assert!(incs[0].is_empty());
        assert_eq!(incs[1].len(), 4);
        assert_eq!(incs[2].len(), 4);
    }

    #[test]
    fn multires_slice_matches_direct_quantize_at_every_budget() {
        // Two full groups plus a partial tail of 3.
        let values: Vec<i64> = vec![21, 6, 17, 11, -13, 5, 0, 30, 7, -7, 1];
        for encoding in [
            SdrEncoding::Unsigned,
            SdrEncoding::Naf,
            SdrEncoding::Booth,
            SdrEncoding::Booth4,
        ] {
            let slice = MultiResSlice::encode(&values, 4, usize::MAX, encoding);
            for alpha in 0..=12 {
                let direct = GroupTermQuantizer::new(4, alpha, encoding).quantize_slice(&values);
                assert_eq!(
                    slice.values_at(alpha),
                    direct,
                    "α = {alpha}, {encoding:?} diverged"
                );
                assert_eq!(
                    slice.kept_terms_at(alpha),
                    GroupTermQuantizer::new(4, alpha, encoding).kept_terms_in_slice(&values),
                    "kept-term count at α = {alpha}, {encoding:?} diverged"
                );
            }
        }
    }

    #[test]
    fn multires_slice_truncated_encode_serves_up_to_max_alpha() {
        let values: Vec<i64> = vec![21, 6, 17, 11, 3, 3];
        let slice = MultiResSlice::encode(&values, 4, 6, SdrEncoding::Unsigned);
        for alpha in 0..=6 {
            let direct =
                GroupTermQuantizer::new(4, alpha, SdrEncoding::Unsigned).quantize_slice(&values);
            assert_eq!(slice.values_at(alpha), direct, "α = {alpha}");
        }
        assert_eq!(slice.max_alpha(), 6);
    }

    #[test]
    #[should_panic(expected = "exceeds encoded")]
    fn multires_slice_rejects_budget_above_encoded() {
        let slice = MultiResSlice::encode(&[21, 6, 17, 11], 4, 4, SdrEncoding::Unsigned);
        let _ = slice.values_at(5);
    }

    #[test]
    fn multires_slice_write_scaled_matches_values_at() {
        let values: Vec<i64> = (-20..21).collect();
        let slice = MultiResSlice::encode(&values, 16, usize::MAX, SdrEncoding::Naf);
        let mut scaled = vec![0.0f32; values.len()];
        slice.write_scaled(7, 0.25, &mut scaled);
        let expect: Vec<f32> = slice
            .values_at(7)
            .iter()
            .map(|&v| v as f32 * 0.25)
            .collect();
        assert_eq!(scaled, expect);
    }

    #[test]
    fn quantize_one_matches_group_path() {
        for encoding in [SdrEncoding::Unsigned, SdrEncoding::Naf] {
            let q = GroupTermQuantizer::new(1, 2, encoding);
            for v in -40..=40 {
                assert_eq!(q.quantize_one(v), q.quantize_i64(&[v]).values[0]);
            }
        }
    }
}
