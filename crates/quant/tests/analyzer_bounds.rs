//! Boundary agreement between the runtime and the `analyze` overflow
//! proof (`cargo run -p xtask -- analyze`, DESIGN.md §15): the pinned
//! worst-case magnitudes in `packed.rs` are *achieved exactly* by the
//! encoders and kernels at the admission boundary, and one step past the
//! boundary is rejected rather than silently widened. If a future change
//! raises a constant, both this test and the analyzer's interval proof
//! must move together.

use mri_quant::packed::{MAX_PACKED_GROUP, MAX_VALUE_MAGNITUDE};
use mri_quant::{PackedTermStore, SdrEncoding};

/// `MAX_VALUE_MAGNITUDE` is the *attained* maximum of one reconstructed
/// value, not just an upper bound: the Unsigned encoding of 255 keeps one
/// term per exponent `0..=7` and rebuilds to exactly 255; every encoding
/// of every admissible magnitude stays at or below it.
#[test]
fn value_magnitude_bound_is_exact() {
    let st = PackedTermStore::encode(&[MAX_VALUE_MAGNITUDE], 1, usize::MAX, SdrEncoding::Unsigned)
        .expect("255 fits the 3-bit exponent field");
    assert_eq!(st.values_at(usize::MAX), vec![MAX_VALUE_MAGNITUDE]);

    for enc in [
        SdrEncoding::Unsigned,
        SdrEncoding::Naf,
        SdrEncoding::Booth,
        SdrEncoding::Booth4,
    ] {
        for v in [
            -MAX_VALUE_MAGNITUDE,
            -128,
            -1,
            0,
            1,
            127,
            MAX_VALUE_MAGNITUDE,
        ] {
            // Recoded forms (NAF/Booth) of boundary magnitudes may spill
            // to exponent 8 and be rejected — rejection is fine, silent
            // widening is not.
            if let Ok(st) = PackedTermStore::encode(&[v], 1, usize::MAX, enc) {
                let got = st.values_at(usize::MAX)[0];
                assert_eq!(got, v, "{enc:?} must reconstruct {v}");
                assert!(got.abs() <= MAX_VALUE_MAGNITUDE);
            }
        }
    }
}

/// One past the boundary: 256 needs `+2^8`, which does not fit the packed
/// 3-bit exponent field, so admission fails as a typed error — exactly the
/// failure mode the analyzer's `group-reconstruct-i64` chain assumes away.
#[test]
fn one_past_the_value_bound_is_rejected() {
    for enc in [SdrEncoding::Unsigned, SdrEncoding::Naf, SdrEncoding::Booth] {
        assert!(
            PackedTermStore::encode(&[MAX_VALUE_MAGNITUDE + 1], 1, usize::MAX, enc).is_err(),
            "{enc:?} must reject 256"
        );
    }
}

/// The analyzer bounds one group's contribution to the i64 row dot by
/// `MAX_PACKED_GROUP * 255 * 255`. Build that worst case for real — a full
/// group of 255s against activations of 255 — and check the runtime dot
/// hits the bound exactly (the value is below 2^24, so f32 is exact).
#[test]
fn worst_case_group_dot_meets_the_analyzer_bound_exactly() {
    let values = vec![MAX_VALUE_MAGNITUDE; MAX_PACKED_GROUP];
    let st = PackedTermStore::encode(&values, MAX_PACKED_GROUP, usize::MAX, SdrEncoding::Unsigned)
        .expect("a full group of 255s packs");
    assert_eq!(st.num_groups(), 1);

    let x = vec![MAX_VALUE_MAGNITUDE as f32; MAX_PACKED_GROUP];
    let got = st.dot_scaled(usize::MAX, 1.0, &x);
    let bound = (MAX_PACKED_GROUP as i64) * MAX_VALUE_MAGNITUDE * MAX_VALUE_MAGNITUDE;
    assert!(
        bound < 1 << 24,
        "bound must be exactly representable in f32"
    );
    assert_eq!(got, bound as f32, "runtime dot != analyzer group bound");
}
