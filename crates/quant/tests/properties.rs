//! Property-based tests for the quantization core.

use mri_quant::sdr::{self, term_count};
use mri_quant::storage::MultiResStorage;
use mri_quant::{GroupTermQuantizer, MultiResGroup, SdrEncoding, UniformQuantizer};
use proptest::prelude::*;

proptest! {
    /// Every encoding is value-preserving for the full i32 range.
    #[test]
    fn encodings_round_trip(v in any::<i32>()) {
        let v = i64::from(v);
        for enc in [SdrEncoding::Unsigned, SdrEncoding::Naf, SdrEncoding::Booth] {
            prop_assert_eq!(sdr::decode(&sdr::encode(v, enc)), v);
        }
    }

    /// NAF has no two adjacent nonzero digits and never more terms than UBR.
    #[test]
    fn naf_nonadjacent_and_no_worse_than_ubr(v in any::<i32>()) {
        let v = i64::from(v);
        let t = sdr::encode(v, SdrEncoding::Naf);
        for w in t.windows(2) {
            prop_assert!(w[0].exponent >= w[1].exponent + 2);
        }
        prop_assert!(t.len() <= term_count(v, SdrEncoding::Unsigned).max(1));
    }

    /// TQ never increases a group's squared error as the budget grows,
    /// and at a generous budget it is lossless.
    #[test]
    fn tq_error_monotone_in_budget(vals in prop::collection::vec(-127i64..=127, 8)) {
        let mut prev = f64::INFINITY;
        for budget in [2usize, 4, 8, 16, 64] {
            let q = GroupTermQuantizer::new(8, budget, SdrEncoding::Naf);
            let out = q.quantize_i64(&vals);
            let err = out.sq_error(&vals);
            prop_assert!(err <= prev + 1e-9, "budget {} error {} > previous {}", budget, err, prev);
            prev = err;
        }
        let q = GroupTermQuantizer::new(8, 64, SdrEncoding::Naf);
        prop_assert_eq!(q.quantize_i64(&vals).values, vals);
    }

    /// The nesting property: a smaller budget's terms are always a prefix of
    /// a larger budget's terms, and the reconstructed values agree with the
    /// one-shot group quantizer.
    #[test]
    fn nested_budgets_are_prefixes(vals in prop::collection::vec(-31i64..=31, 4)) {
        let g = MultiResGroup::from_values(&vals, 12, SdrEncoding::Naf);
        for (s, l) in [(1usize, 3usize), (2, 8), (4, 12), (0, 12)] {
            prop_assert!(g.is_nested(s, l));
        }
        for budget in 0..=12usize {
            let q = GroupTermQuantizer::new(4, budget, SdrEncoding::Naf);
            prop_assert_eq!(g.values_at(budget), q.quantize_i64(&vals).values);
        }
    }

    /// Packed storage reconstructs exactly the same sub-model values as the
    /// in-memory group, for every configured budget.
    #[test]
    fn storage_round_trip(vals in prop::collection::vec(-127i64..=127, 8)) {
        let budgets = [2usize, 5, 9, 14];
        let g = MultiResGroup::from_values(&vals, 14, SdrEncoding::Naf);
        let mut st = MultiResStorage::store(&g, &budgets, 16).unwrap();
        for &b in &budgets {
            prop_assert_eq!(st.values_at(b), g.values_at(b));
        }
    }

    /// Uniform quantization round-trip error is bounded by half a step, and
    /// quantized magnitudes never exceed the level count.
    #[test]
    fn uq_error_bound(x in -3.0f32..3.0, bits in 2u32..9) {
        let q = UniformQuantizer::symmetric(bits, 1.0);
        let lvl = q.quantize(x);
        prop_assert!(lvl.abs() <= q.levels());
        if x.abs() <= 1.0 {
            prop_assert!((q.fake_quantize(x) - x).abs() <= q.scale() / 2.0 + 1e-6);
        } else {
            // Clipped: error equals the clipping distance.
            prop_assert!((q.fake_quantize(x).abs() - 1.0).abs() <= 1e-6);
        }
    }

    /// With budget >= the total term count the group quantizer keeps all
    /// terms; with budget 0 everything drops.
    #[test]
    fn budget_extremes(vals in prop::collection::vec(-63i64..=63, 6)) {
        let q0 = GroupTermQuantizer::new(6, 0, SdrEncoding::Naf);
        prop_assert!(q0.quantize_i64(&vals).values.iter().all(|&v| v == 0));
        let qfull = GroupTermQuantizer::new(6, 6 * 8, SdrEncoding::Naf);
        prop_assert_eq!(qfull.quantize_i64(&vals).values, vals);
    }

    /// Per-value TQ error is bounded by the magnitude sum of that value's
    /// dropped terms (truncation can under- or over-shoot — e.g. NAF 22 =
    /// 2^5 - 2^3 - 2^1 truncated to one term gives 32 — but never by more
    /// than what was dropped).
    #[test]
    fn tq_error_bounded_by_dropped_terms(
        vals in prop::collection::vec(-127i64..=127, 8),
        budget in 0usize..20,
    ) {
        let q = GroupTermQuantizer::new(8, budget, SdrEncoding::Naf);
        let out = q.quantize_i64(&vals);
        let mut dropped_mag = vec![0i64; vals.len()];
        for gt in &out.dropped {
            dropped_mag[gt.index] += gt.term.value().abs();
        }
        for i in 0..vals.len() {
            prop_assert!(
                (out.values[i] - vals[i]).abs() <= dropped_mag[i],
                "value {}: |{} - {}| > dropped {}",
                i, out.values[i], vals[i], dropped_mag[i]
            );
        }
    }
}
