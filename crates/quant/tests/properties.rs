//! Property-based tests for the quantization core.

use mri_quant::sdr::{self, term_count};
use mri_quant::storage::MultiResStorage;
use mri_quant::{GroupTermQuantizer, MultiResGroup, SdrEncoding, UniformQuantizer};
use proptest::prelude::*;

proptest! {
    /// Every encoding is value-preserving for the full i32 range.
    #[test]
    fn encodings_round_trip(v in any::<i32>()) {
        let v = i64::from(v);
        for enc in [SdrEncoding::Unsigned, SdrEncoding::Naf, SdrEncoding::Booth] {
            prop_assert_eq!(sdr::decode(&sdr::encode(v, enc)), v);
        }
    }

    /// NAF has no two adjacent nonzero digits and never more terms than UBR.
    #[test]
    fn naf_nonadjacent_and_no_worse_than_ubr(v in any::<i32>()) {
        let v = i64::from(v);
        let t = sdr::encode(v, SdrEncoding::Naf);
        for w in t.windows(2) {
            prop_assert!(w[0].exponent >= w[1].exponent + 2);
        }
        prop_assert!(t.len() <= term_count(v, SdrEncoding::Unsigned).max(1));
    }

    /// TQ never increases a group's squared error as the budget grows,
    /// and at a generous budget it is lossless.
    #[test]
    fn tq_error_monotone_in_budget(vals in prop::collection::vec(-127i64..=127, 8)) {
        let mut prev = f64::INFINITY;
        for budget in [2usize, 4, 8, 16, 64] {
            let q = GroupTermQuantizer::new(8, budget, SdrEncoding::Naf);
            let out = q.quantize_i64(&vals);
            let err = out.sq_error(&vals);
            prop_assert!(err <= prev + 1e-9, "budget {} error {} > previous {}", budget, err, prev);
            prev = err;
        }
        let q = GroupTermQuantizer::new(8, 64, SdrEncoding::Naf);
        prop_assert_eq!(q.quantize_i64(&vals).values, vals);
    }

    /// The nesting property: a smaller budget's terms are always a prefix of
    /// a larger budget's terms, and the reconstructed values agree with the
    /// one-shot group quantizer.
    #[test]
    fn nested_budgets_are_prefixes(vals in prop::collection::vec(-31i64..=31, 4)) {
        let g = MultiResGroup::from_values(&vals, 12, SdrEncoding::Naf);
        for (s, l) in [(1usize, 3usize), (2, 8), (4, 12), (0, 12)] {
            prop_assert!(g.is_nested(s, l));
        }
        for budget in 0..=12usize {
            let q = GroupTermQuantizer::new(4, budget, SdrEncoding::Naf);
            prop_assert_eq!(g.values_at(budget), q.quantize_i64(&vals).values);
        }
    }

    /// Packed storage reconstructs exactly the same sub-model values as the
    /// in-memory group, for every configured budget.
    #[test]
    fn storage_round_trip(vals in prop::collection::vec(-127i64..=127, 8)) {
        let budgets = [2usize, 5, 9, 14];
        let g = MultiResGroup::from_values(&vals, 14, SdrEncoding::Naf);
        let st = MultiResStorage::store(&g, &budgets, 16).unwrap();
        for &b in &budgets {
            prop_assert_eq!(st.values_at(b), g.values_at(b));
        }
    }

    /// Uniform quantization round-trip error is bounded by half a step, and
    /// quantized magnitudes never exceed the level count.
    #[test]
    fn uq_error_bound(x in -3.0f32..3.0, bits in 2u32..9) {
        let q = UniformQuantizer::symmetric(bits, 1.0);
        let lvl = q.quantize(x);
        prop_assert!(lvl.abs() <= q.levels());
        if x.abs() <= 1.0 {
            prop_assert!((q.fake_quantize(x) - x).abs() <= q.scale() / 2.0 + 1e-6);
        } else {
            // Clipped: error equals the clipping distance.
            prop_assert!((q.fake_quantize(x).abs() - 1.0).abs() <= 1e-6);
        }
    }

    /// With budget >= the total term count the group quantizer keeps all
    /// terms; with budget 0 everything drops.
    #[test]
    fn budget_extremes(vals in prop::collection::vec(-63i64..=63, 6)) {
        let q0 = GroupTermQuantizer::new(6, 0, SdrEncoding::Naf);
        prop_assert!(q0.quantize_i64(&vals).values.iter().all(|&v| v == 0));
        let qfull = GroupTermQuantizer::new(6, 6 * 8, SdrEncoding::Naf);
        prop_assert_eq!(qfull.quantize_i64(&vals).values, vals);
    }

    /// Per-value TQ error is bounded by the magnitude sum of that value's
    /// dropped terms (truncation can under- or over-shoot — e.g. NAF 22 =
    /// 2^5 - 2^3 - 2^1 truncated to one term gives 32 — but never by more
    /// than what was dropped).
    #[test]
    fn tq_error_bounded_by_dropped_terms(
        vals in prop::collection::vec(-127i64..=127, 8),
        budget in 0usize..20,
    ) {
        let q = GroupTermQuantizer::new(8, budget, SdrEncoding::Naf);
        let out = q.quantize_i64(&vals);
        let mut dropped_mag = vec![0i64; vals.len()];
        for gt in &out.dropped {
            dropped_mag[gt.index] += gt.term.value().abs();
        }
        for i in 0..vals.len() {
            prop_assert!(
                (out.values[i] - vals[i]).abs() <= dropped_mag[i],
                "value {}: |{} - {}| > dropped {}",
                i, out.values[i], vals[i], dropped_mag[i]
            );
        }
    }
}

use mri_quant::{MultiResSlice, PackedTermStore};

proptest! {
    /// The reusable-term cache invariant: a slice encoded once (at any
    /// sufficient max budget) and served by prefix truncation is
    /// bit-identical to re-running the direct group quantizer at every
    /// budget — across encodings, group sizes (including ragged tails) and
    /// the whole budget range. This is what lets the weight-term cache in
    /// `mri-core` serve every sub-model from one encode.
    #[test]
    fn prefix_truncation_matches_direct_quantization(
        vals in prop::collection::vec(-127i64..=127, 1..40),
        group_size in 1usize..20,
        enc_idx in 0usize..4,
    ) {
        let encoding = [
            SdrEncoding::Unsigned,
            SdrEncoding::Naf,
            SdrEncoding::Booth,
            SdrEncoding::Booth4,
        ][enc_idx];
        let slice = MultiResSlice::encode(&vals, group_size, usize::MAX, encoding);
        for alpha in 0..=(group_size * 9) {
            let q = GroupTermQuantizer::new(group_size, alpha, encoding);
            prop_assert_eq!(
                slice.values_at(alpha),
                q.quantize_slice(&vals),
                "alpha {} g {} enc {:?}", alpha, group_size, encoding
            );
            prop_assert_eq!(
                slice.kept_terms_at(alpha),
                q.kept_terms_in_slice(&vals),
                "kept terms at alpha {}", alpha
            );
        }
    }

    /// The packed wire format is a lossless twin of the `GroupTerm`-array
    /// slice: reconstructed integers, scaled f32 serves (bit-for-bit) and
    /// term accounting all agree across every encoding, group layout
    /// (ragged tails included) and the whole budget range. This is what
    /// lets the weight-term cache hold *only* the packed bytes.
    #[test]
    fn packed_store_is_bit_identical_to_slice(
        vals in prop::collection::vec(-127i64..=127, 1..40),
        group_size in 1usize..20,
        enc_idx in 0usize..4,
    ) {
        let encoding = [
            SdrEncoding::Unsigned,
            SdrEncoding::Naf,
            SdrEncoding::Booth,
            SdrEncoding::Booth4,
        ][enc_idx];
        let slice = MultiResSlice::encode(&vals, group_size, usize::MAX, encoding);
        let st = PackedTermStore::from_slice(&slice).unwrap();
        for alpha in 0..=(group_size * 9) {
            prop_assert_eq!(
                st.values_at(alpha),
                slice.values_at(alpha),
                "alpha {} g {} enc {:?}", alpha, group_size, encoding
            );
            prop_assert_eq!(st.kept_terms_at(alpha), slice.kept_terms_at(alpha));
            let mut packed = vec![0.0f32; vals.len()];
            let mut dense = vec![0.0f32; vals.len()];
            st.write_scaled(alpha, 0.25, &mut packed);
            slice.write_scaled(alpha, 0.25, &mut dense);
            let pb: Vec<u32> = packed.iter().map(|v| v.to_bits()).collect();
            let db: Vec<u32> = dense.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(pb, db, "scaled serve at alpha {}", alpha);
        }
    }

    /// The shift-add dot kernel never diverges from "dequantize the row,
    /// then run the dense dot" — bit-for-bit, for any finite input, at any
    /// budget, under every encoding.
    #[test]
    fn packed_dot_is_bit_identical_to_dense_dot(
        pairs in prop::collection::vec((-127i64..=127, -4.0f32..4.0), 1..40),
        enc_idx in 0usize..4,
        alpha in 0usize..24,
    ) {
        let encoding = [
            SdrEncoding::Unsigned,
            SdrEncoding::Naf,
            SdrEncoding::Booth,
            SdrEncoding::Booth4,
        ][enc_idx];
        let vals: Vec<i64> = pairs.iter().map(|&(v, _)| v).collect();
        let x: Vec<f32> = pairs.iter().map(|&(_, v)| v).collect();
        let scale = 0.031_25f32;
        let st = PackedTermStore::encode(&vals, 16, usize::MAX, encoding).unwrap();
        let mut w = vec![0.0f32; vals.len()];
        st.write_scaled(alpha, scale, &mut w);
        let mut dense = 0.0f32;
        for (xv, wv) in x.iter().zip(w.iter()) {
            dense += xv * wv;
        }
        let packed = st.dot_scaled(alpha, scale, &x);
        prop_assert_eq!(packed.to_bits(), dense.to_bits(), "{:?} alpha {}", encoding, alpha);
    }

    /// Encoding at a finite max budget still serves every budget up to it
    /// exactly, and the scaled serve path agrees with values_at.
    #[test]
    fn truncated_encode_serves_its_whole_range(
        vals in prop::collection::vec(-63i64..=63, 1..24),
        group_size in 1usize..12,
        max_alpha in 1usize..16,
    ) {
        let slice = MultiResSlice::encode(&vals, group_size, max_alpha, SdrEncoding::Naf);
        for alpha in 0..=max_alpha {
            let q = GroupTermQuantizer::new(group_size, alpha, SdrEncoding::Naf);
            prop_assert_eq!(slice.values_at(alpha), q.quantize_slice(&vals));
            let mut scaled = vec![0.0f32; vals.len()];
            slice.write_scaled(alpha, 0.5, &mut scaled);
            let direct = q.quantize_slice(&vals);
            for (s, d) in scaled.iter().zip(direct.iter()) {
                prop_assert_eq!(*s, *d as f32 * 0.5);
            }
        }
    }
}
