//! Residual CNN classifiers built from quantized layers.

use mri_core::{QConv2d, QLinear, QuantConfig, ResolutionControl};
use mri_nn::{
    BatchNorm2d, BnBankSelector, FreezeError, FreezeSink, GlobalAvgPool, Layer, Mode, Param, Relu,
    Sequential,
};
use mri_tensor::conv::Conv2dCfg;
use mri_tensor::Tensor;
use rand::Rng;
use std::sync::Arc;

/// A pre-activation-free basic residual block: `relu(bn(conv(x)) + skip(x))`
/// with an optional 1×1 projection shortcut for stride/width changes.
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    relu: Relu,
    cached_x: Option<Tensor>,
}

/// Per-sub-model switchable BN configuration: `(bank count, selector)`.
pub type BnBanks = Option<(usize, BnBankSelector)>;

fn make_bn(channels: usize, banks: &BnBanks) -> BatchNorm2d {
    match banks {
        Some((n, sel)) => BatchNorm2d::banked(channels, *n, Some(Arc::clone(sel))),
        None => BatchNorm2d::new(channels),
    }
}

impl ResidualBlock {
    /// Builds a block of two 3×3 quantized convolutions.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        ResidualBlock::new_banked(rng, in_ch, out_ch, stride, qcfg, control, &None)
    }

    /// [`ResidualBlock::new`] with switchable BN statistic banks.
    pub fn new_banked<R: Rng + ?Sized>(
        rng: &mut R,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
        banks: &BnBanks,
    ) -> Self {
        let mut main = Sequential::new();
        main.push(QConv2d::new(
            rng,
            in_ch,
            out_ch,
            Conv2dCfg::new(3, stride, 1),
            qcfg,
            Arc::clone(control),
        ));
        main.push(make_bn(out_ch, banks));
        main.push(Relu::new());
        main.push(QConv2d::new(
            rng,
            out_ch,
            out_ch,
            Conv2dCfg::same(3),
            qcfg,
            Arc::clone(control),
        ));
        main.push(make_bn(out_ch, banks));

        let shortcut = if stride != 1 || in_ch != out_ch {
            let mut s = Sequential::new();
            s.push(QConv2d::new(
                rng,
                in_ch,
                out_ch,
                Conv2dCfg::new(1, stride, 0),
                qcfg,
                Arc::clone(control),
            ));
            s.push(make_bn(out_ch, banks));
            Some(s)
        } else {
            None
        };
        ResidualBlock {
            main,
            shortcut,
            relu: Relu::new(),
            cached_x: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.cached_x = Some(x.clone());
        }
        let main = self.main.forward(x, mode);
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(x, mode),
            None => x.clone(),
        };
        self.relu.forward(&(&main + &skip), mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.relu.backward(grad_out);
        let g_main = self.main.backward(&g);
        let g_skip = match &mut self.shortcut {
            Some(s) => s.backward(&g),
            None => g,
        };
        &g_main + &g_skip
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(visitor);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(visitor);
        }
    }

    fn describe(&self) -> String {
        format!(
            "residual[{}{}]",
            self.main.describe(),
            if self.shortcut.is_some() {
                " + projection"
            } else {
                ""
            }
        )
    }

    fn freeze_into(&self, sink: &mut dyn FreezeSink) -> Result<(), FreezeError> {
        // Mirrors the eval forward: `relu(main(x) + skip(x))`, where the
        // trailing relu is folded into the block end.
        sink.begin_block()?;
        self.main.freeze_into(sink)?;
        if let Some(s) = &self.shortcut {
            sink.begin_shortcut()?;
            s.freeze_into(sink)?;
        }
        sink.end_block(true)
    }
}

/// A scaled-down residual classifier in the ResNet family.
///
/// Three stages of residual blocks over a quantized stem, global average
/// pooling and a quantized linear head. `blocks_per_stage` and `width`
/// select the ResNet-18-like, ResNet-50-like and MobileNet-like variants
/// used in the evaluation (see the constructors).
pub struct MiniResNet {
    net: Sequential,
    classes: usize,
    name: &'static str,
}

impl MiniResNet {
    /// Builds a custom variant.
    pub fn build<R: Rng + ?Sized>(
        rng: &mut R,
        name: &'static str,
        classes: usize,
        width: usize,
        blocks_per_stage: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        MiniResNet::build_banked(
            rng,
            name,
            classes,
            width,
            blocks_per_stage,
            qcfg,
            control,
            None,
        )
    }

    /// [`MiniResNet::build`] with per-sub-model switchable BN statistic
    /// banks: pass `(number_of_sub_models, selector)` and set the selector
    /// to the active sub-model index before each forward pass.
    #[allow(clippy::too_many_arguments)] // mirror of `build` plus the bank handle
    pub fn build_banked<R: Rng + ?Sized>(
        rng: &mut R,
        name: &'static str,
        classes: usize,
        width: usize,
        blocks_per_stage: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
        banks: BnBanks,
    ) -> Self {
        let mut net = Sequential::new();
        // Stem.
        net.push(QConv2d::new(
            rng,
            3,
            width,
            Conv2dCfg::same(3),
            qcfg,
            Arc::clone(control),
        ));
        net.push(make_bn(width, &banks));
        net.push(Relu::new());
        // Stages at width, 2·width, 4·width with stride-2 transitions.
        let mut in_ch = width;
        for (stage, mult) in [1usize, 2, 4].into_iter().enumerate() {
            let out_ch = width * mult;
            for b in 0..blocks_per_stage {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                net.push(ResidualBlock::new_banked(
                    rng, in_ch, out_ch, stride, qcfg, control, &banks,
                ));
                in_ch = out_ch;
            }
        }
        net.push(GlobalAvgPool::new());
        net.push(QLinear::new(rng, in_ch, classes, qcfg, Arc::clone(control)));
        MiniResNet { net, classes, name }
    }

    /// The ResNet-18 stand-in: 2 blocks per stage at width 16.
    pub fn resnet18_like<R: Rng + ?Sized>(
        rng: &mut R,
        classes: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        MiniResNet::build(rng, "MiniResNet18", classes, 16, 2, qcfg, control)
    }

    /// The ResNet-50 stand-in: 3 blocks per stage at width 20.
    pub fn resnet50_like<R: Rng + ?Sized>(
        rng: &mut R,
        classes: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        MiniResNet::build(rng, "MiniResNet50", classes, 20, 3, qcfg, control)
    }

    /// The MobileNet-v2 stand-in: a narrow single-block-per-stage network.
    pub fn mobilenet_like<R: Rng + ?Sized>(
        rng: &mut R,
        classes: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        MiniResNet::build(rng, "MiniMobileNet", classes, 12, 1, qcfg, control)
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Variant name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.net.param_count()
    }
}

impl Layer for MiniResNet {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.net.forward(x, mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.net.backward(grad_out)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(visitor);
    }

    fn describe(&self) -> String {
        format!("{}({})", self.name, self.net.describe())
    }

    fn freeze_into(&self, sink: &mut dyn FreezeSink) -> Result<(), FreezeError> {
        self.net.freeze_into(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mri_core::Resolution;
    use mri_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctl() -> Arc<ResolutionControl> {
        Arc::new(ResolutionControl::new(Resolution::Tq {
            alpha: 20,
            beta: 3,
        }))
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let control = ctl();
        let mut m = MiniResNet::resnet18_like(&mut rng, 6, QuantConfig::paper_cnn(), &control);
        let x = init::uniform(&mut rng, &[2, 3, 16, 16], 0.0, 1.0);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 6]);
    }

    #[test]
    fn residual_block_identity_path_backward() {
        let mut rng = StdRng::seed_from_u64(1);
        let control = ctl();
        let mut block = ResidualBlock::new(&mut rng, 4, 4, 1, QuantConfig::paper_cnn(), &control);
        let x = init::uniform(&mut rng, &[1, 4, 8, 8], 0.0, 1.0);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.dims(), x.dims());
        let gx = block.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        assert!(gx.norm_sq() > 0.0);
    }

    #[test]
    fn projection_shortcut_changes_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let control = ctl();
        let mut block = ResidualBlock::new(&mut rng, 4, 8, 2, QuantConfig::paper_cnn(), &control);
        let x = init::uniform(&mut rng, &[1, 4, 8, 8], 0.0, 1.0);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[1, 8, 4, 4]);
        let gx = block.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn variants_have_increasing_capacity() {
        let mut rng = StdRng::seed_from_u64(3);
        let control = ctl();
        let mut small = MiniResNet::mobilenet_like(&mut rng, 4, QuantConfig::paper_cnn(), &control);
        let mut mid = MiniResNet::resnet18_like(&mut rng, 4, QuantConfig::paper_cnn(), &control);
        let mut big = MiniResNet::resnet50_like(&mut rng, 4, QuantConfig::paper_cnn(), &control);
        assert!(small.param_count() < mid.param_count());
        assert!(mid.param_count() < big.param_count());
    }

    #[test]
    fn term_pairs_respond_to_resolution() {
        let mut rng = StdRng::seed_from_u64(4);
        let control = ctl();
        let mut m = MiniResNet::mobilenet_like(&mut rng, 4, QuantConfig::paper_cnn(), &control);
        let x = init::uniform(&mut rng, &[1, 3, 16, 16], 0.0, 1.0);
        control.set_resolution(Resolution::Tq { alpha: 20, beta: 3 });
        control.reset_counters();
        m.forward(&x, Mode::Eval);
        let hi = control.term_pairs();
        control.set_resolution(Resolution::Tq { alpha: 8, beta: 2 });
        control.reset_counters();
        m.forward(&x, Mode::Eval);
        let lo = control.term_pairs();
        assert!(
            lo * 3 < hi,
            "γ=16 ({lo}) should be ~3.75x cheaper than γ=60 ({hi})"
        );
    }

    #[test]
    fn short_training_run_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let control = ctl();
        let mut m = MiniResNet::mobilenet_like(&mut rng, 2, QuantConfig::paper_cnn(), &control);
        let mut ds = mri_data::SyntheticImages::new(1, 2, 8);
        let (x, labels) = ds.batch(16);
        let mut opt = mri_nn::Sgd::new(0.05, 0.9, 1e-4);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..15 {
            m.visit_params(&mut |p| p.zero_grad());
            let logits = m.forward(&x, Mode::Train);
            let (l, g) = mri_nn::loss::cross_entropy(&logits, &labels);
            m.backward(&g);
            opt.step(|f| m.visit_params(f));
            first.get_or_insert(l);
            last = l;
        }
        assert!(last < first.unwrap(), "loss {first:?} -> {last}");
    }
}

/// A MobileNet-v2 inverted residual block built from quantized layers:
/// 1×1 expand → 3×3 depthwise → 1×1 project, with a residual connection
/// when the geometry allows.
pub struct InvertedResidual {
    expand: Option<Sequential>,
    depthwise: Sequential,
    project: Sequential,
    has_skip: bool,
    cached_x: Option<Tensor>,
}

impl InvertedResidual {
    /// Builds a block with expansion factor `t`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        t: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        use mri_core::QDepthwiseConv2d;
        let hidden = in_ch * t;
        let expand = if t != 1 {
            let mut e = Sequential::new();
            e.push(QConv2d::new(
                rng,
                in_ch,
                hidden,
                Conv2dCfg::new(1, 1, 0),
                qcfg,
                Arc::clone(control),
            ));
            e.push(BatchNorm2d::new(hidden));
            e.push(Relu::new());
            Some(e)
        } else {
            None
        };
        let mut depthwise = Sequential::new();
        depthwise.push(QDepthwiseConv2d::new(
            rng,
            hidden,
            Conv2dCfg::new(3, stride, 1),
            qcfg,
            Arc::clone(control),
        ));
        depthwise.push(BatchNorm2d::new(hidden));
        depthwise.push(Relu::new());
        let mut project = Sequential::new();
        project.push(QConv2d::new(
            rng,
            hidden,
            out_ch,
            Conv2dCfg::new(1, 1, 0),
            qcfg,
            Arc::clone(control),
        ));
        project.push(BatchNorm2d::new(out_ch)); // linear bottleneck: no ReLU
        InvertedResidual {
            expand,
            depthwise,
            project,
            has_skip: stride == 1 && in_ch == out_ch,
            cached_x: None,
        }
    }
}

impl Layer for InvertedResidual {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.cached_x = Some(x.clone());
        }
        let mut h = match &mut self.expand {
            Some(e) => e.forward(x, mode),
            None => x.clone(),
        };
        h = self.depthwise.forward(&h, mode);
        let out = self.project.forward(&h, mode);
        if self.has_skip {
            &out + x
        } else {
            out
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.project.backward(grad_out);
        let g = self.depthwise.backward(&g);
        let g_main = match &mut self.expand {
            Some(e) => e.backward(&g),
            None => g,
        };
        if self.has_skip {
            &g_main + grad_out
        } else {
            g_main
        }
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        if let Some(e) = &mut self.expand {
            e.visit_params(visitor);
        }
        self.depthwise.visit_params(visitor);
        self.project.visit_params(visitor);
    }

    fn describe(&self) -> String {
        format!(
            "inverted_residual[{}{}, {}, {}]",
            self.expand
                .as_ref()
                .map(|e| e.describe())
                .unwrap_or_default(),
            if self.has_skip { " + skip" } else { "" },
            self.depthwise.describe(),
            self.project.describe()
        )
    }

    fn freeze_into(&self, sink: &mut dyn FreezeSink) -> Result<(), FreezeError> {
        // Mirrors the eval forward: linear bottleneck (`project(depthwise(
        // expand(x))) + x` when the geometry allows a skip, no relu after
        // the add).
        if self.has_skip {
            sink.begin_block()?;
        }
        if let Some(e) = &self.expand {
            e.freeze_into(sink)?;
        }
        self.depthwise.freeze_into(sink)?;
        self.project.freeze_into(sink)?;
        if self.has_skip {
            sink.end_block(false)?;
        }
        Ok(())
    }
}

/// A faithful (scaled-down) MobileNet-v2: quantized stem, inverted residual
/// stages with depthwise convolutions, global pooling and a quantized head.
pub struct MiniMobileNetV2 {
    net: Sequential,
    classes: usize,
}

impl MiniMobileNetV2 {
    /// Builds the model. Stage table `(t, c, n, s)` mirrors the original at
    /// reduced width.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        classes: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        let mut net = Sequential::new();
        net.push(QConv2d::new(
            rng,
            3,
            8,
            Conv2dCfg::same(3),
            qcfg,
            Arc::clone(control),
        ));
        net.push(BatchNorm2d::new(8));
        net.push(Relu::new());
        let stages: [(usize, usize, usize, usize); 3] =
            [(1, 8, 1, 1), (4, 12, 2, 2), (4, 16, 2, 2)];
        let mut in_ch = 8;
        for (t, c, n, s) in stages {
            for b in 0..n {
                let stride = if b == 0 { s } else { 1 };
                net.push(InvertedResidual::new(
                    rng, in_ch, c, stride, t, qcfg, control,
                ));
                in_ch = c;
            }
        }
        net.push(GlobalAvgPool::new());
        net.push(QLinear::new(rng, in_ch, classes, qcfg, Arc::clone(control)));
        MiniMobileNetV2 { net, classes }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.net.param_count()
    }
}

impl Layer for MiniMobileNetV2 {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.net.forward(x, mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.net.backward(grad_out)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(visitor);
    }

    fn describe(&self) -> String {
        format!("MiniMobileNetV2({})", self.net.describe())
    }

    fn freeze_into(&self, sink: &mut dyn FreezeSink) -> Result<(), FreezeError> {
        self.net.freeze_into(sink)
    }
}

#[cfg(test)]
mod mobilenet_tests {
    use super::*;
    use mri_core::Resolution;
    use mri_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctl2() -> Arc<ResolutionControl> {
        Arc::new(ResolutionControl::new(Resolution::Tq {
            alpha: 12,
            beta: 2,
        }))
    }

    #[test]
    fn forward_shapes_through_strided_stages() {
        let mut rng = StdRng::seed_from_u64(0);
        let control = ctl2();
        let mut m = MiniMobileNetV2::new(&mut rng, 5, QuantConfig::paper_cnn(), &control);
        let x = init::uniform(&mut rng, &[2, 3, 16, 16], 0.0, 1.0);
        let y = m.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 5]);
    }

    #[test]
    fn inverted_residual_skip_path_backward() {
        let mut rng = StdRng::seed_from_u64(1);
        let control = ctl2();
        let mut block =
            InvertedResidual::new(&mut rng, 6, 6, 1, 4, QuantConfig::paper_cnn(), &control);
        let x = init::uniform(&mut rng, &[1, 6, 8, 8], 0.0, 1.0);
        let y = block.forward(&x, Mode::Train);
        assert_eq!(y.dims(), x.dims());
        let gx = block.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        // The skip path guarantees the gradient includes the identity.
        assert!(gx.sum() != 0.0);
    }

    #[test]
    fn short_training_run_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let control = ctl2();
        let mut m = MiniMobileNetV2::new(&mut rng, 2, QuantConfig::paper_cnn(), &control);
        let mut ds = mri_data::SyntheticImages::new(3, 2, 8);
        let (x, labels) = ds.batch(16);
        let mut opt = mri_nn::Sgd::new(0.05, 0.9, 1e-4);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..12 {
            m.visit_params(&mut |p| p.zero_grad());
            let logits = m.forward(&x, Mode::Train);
            let (l, g) = mri_nn::loss::cross_entropy(&logits, &labels);
            m.backward(&g);
            opt.step(|f| m.visit_params(f));
            first.get_or_insert(l);
            last = l;
        }
        assert!(last < first.unwrap(), "loss {first:?} -> {last}");
    }

    #[test]
    fn depthwise_layers_cost_few_term_pairs() {
        // Depthwise dot products are k = 9: the term-pair bill should be far
        // smaller than an equivalent dense conv.
        let mut rng = StdRng::seed_from_u64(3);
        let control = ctl2();
        let mut m = MiniMobileNetV2::new(&mut rng, 4, QuantConfig::paper_cnn(), &control);
        let x = init::uniform(&mut rng, &[1, 3, 16, 16], 0.0, 1.0);
        control.reset_counters();
        m.forward(&x, Mode::Eval);
        let mobile_tp = control.term_pairs();
        assert!(mobile_tp > 0);

        let control2 = ctl2();
        let mut rng2 = StdRng::seed_from_u64(3);
        let mut resnet =
            MiniResNet::resnet18_like(&mut rng2, 4, QuantConfig::paper_cnn(), &control2);
        control2.reset_counters();
        resnet.forward(&x, Mode::Eval);
        assert!(
            mobile_tp * 3 < control2.term_pairs(),
            "mobilenet {mobile_tp} vs resnet {}",
            control2.term_pairs()
        );
    }
}
