//! # mri-models
//!
//! Reference models built from the multi-resolution quantized layers of
//! [`mri_core`], scaled to train on a CPU while preserving the architectural
//! families the paper evaluates:
//!
//! * [`MiniResNet`] — residual CNNs (the ResNet-18/-50 stand-ins) and a
//!   narrow variant standing in for MobileNet-v2;
//! * [`LstmLm`] — a two-layer quantized LSTM language model (the
//!   WikiText-2 experiment);
//! * [`TinyYolo`] — a single-scale grid detector with objectness, box and
//!   class heads (the YOLO-v5/COCO experiment).
//!
//! Every model listens to one shared [`mri_core::ResolutionControl`], so a
//! single instance serves all sub-models at runtime.

#![warn(missing_docs)]

pub mod cnn;
pub mod lstm_lm;
pub mod yolo;

pub use cnn::{InvertedResidual, MiniMobileNetV2, MiniResNet, ResidualBlock};
pub use lstm_lm::LstmLm;
pub use yolo::TinyYolo;
