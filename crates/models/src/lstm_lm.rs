//! A two-layer quantized LSTM language model (the WikiText-2 experiment).
//!
//! Weight quantization follows Algorithm 1 exactly — symmetric UQ at the
//! meta bitwidth with a learnable clip, then group TQ at the active budget —
//! implemented by temporarily swapping fake-quantized weights into the LSTM
//! cells for the forward/backward pair and restoring the full-precision
//! masters before the optimizer step (straight-through estimation). Data
//! entering each recurrent layer is quantized with the active `β`.

use mri_core::{fake_quantize_data, QLinear, QuantConfig, ResolutionControl, WeightTermCache};
use mri_nn::{Dropout, Embedding, Layer, Lstm, Mode, Param};
use mri_tensor::Tensor;
use rand::Rng;
use std::sync::Arc;

/// A quantized 2-layer LSTM language model.
pub struct LstmLm {
    emb: Embedding,
    lstm1: Lstm,
    lstm2: Lstm,
    drop1: Dropout,
    drop2: Dropout,
    head: QLinear,
    w_clip: Param,
    x_clip: Param,
    qcfg: QuantConfig,
    control: Arc<ResolutionControl>,
    state: Option<FwdState>,
    /// One reusable weight-term cache per rank-2 gate weight, indexed in
    /// visit order over both cells.
    gate_caches: Vec<WeightTermCache>,
}

struct FwdState {
    steps: usize,
    batch: usize,
    saved_weights: Vec<Tensor>,
    weight_ste: Vec<Tensor>,
    weight_sat: Vec<Tensor>,
    e_ste: Tensor,
    e_sat: Tensor,
    h1_ste: Tensor,
    h1_sat: Tensor,
    hidden: usize,
    emb_dim: usize,
}

impl LstmLm {
    /// Builds the model: embedding → LSTM ×2 (with dropout) → quantized
    /// linear decoder, mirroring the paper's §6.4.2 configuration scaled to
    /// CPU size.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        dropout: f32,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        let mut lm = LstmLm {
            emb: Embedding::new(rng, vocab, emb_dim),
            lstm1: Lstm::new(rng, emb_dim, hidden),
            lstm2: Lstm::new(rng, hidden, hidden),
            drop1: Dropout::new(dropout, 11),
            drop2: Dropout::new(dropout, 13),
            head: QLinear::new(rng, hidden, vocab, qcfg, Arc::clone(control)),
            w_clip: Param::new_no_decay(Tensor::from_slice(&[qcfg.init_weight_clip])),
            x_clip: Param::new_no_decay(Tensor::from_slice(&[qcfg.init_data_clip])),
            qcfg,
            control: Arc::clone(control),
            state: None,
            gate_caches: Vec::new(),
        };
        let mut rank2 = 0usize;
        for lstm in [&mut lm.lstm1, &mut lm.lstm2] {
            lstm.visit_params(&mut |p| {
                if p.value.shape().rank() == 2 {
                    rank2 += 1;
                }
            });
        }
        lm.gate_caches = (0..rank2).map(|_| WeightTermCache::new()).collect();
        lm
    }

    /// The per-gate reusable weight-term caches (visit order over both
    /// cells' rank-2 weights); the decoder head's cache lives on
    /// [`QLinear::weight_cache`].
    pub fn weight_caches(&self) -> &[WeightTermCache] {
        &self.gate_caches
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.emb.vocab()
    }

    /// Forward pass over a time-major token batch (`ids[t * batch + b]`),
    /// returning logits `[steps * batch, vocab]`.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != steps * batch`.
    pub fn forward(&mut self, ids: &[usize], steps: usize, batch: usize, mode: Mode) -> Tensor {
        assert_eq!(ids.len(), steps * batch, "token count mismatch");
        let res = self.control.resolution();
        let w_clip = self.w_clip.value.data()[0].max(1e-3);
        let x_clip = self.x_clip.value.data()[0].max(1e-3);

        // Swap fake-quantized weights into both LSTM cells, serving each
        // gate from its term cache (swapping and restoring the masters does
        // not bump the version, so the entries stay valid across passes).
        let mut saved = Vec::new();
        let mut stes = Vec::new();
        let mut sats = Vec::new();
        let qcfg = self.qcfg;
        let caches = &self.gate_caches;
        let mut cache_idx = 0usize;
        for lstm in [&mut self.lstm1, &mut self.lstm2] {
            lstm.visit_params(&mut |p| {
                if p.value.shape().rank() == 2 {
                    let row_len = p.value.dim(1);
                    let fq = caches[cache_idx].quantize(
                        &p.value,
                        p.version(),
                        w_clip,
                        res,
                        qcfg,
                        row_len,
                    );
                    cache_idx += 1;
                    saved.push(std::mem::replace(&mut p.value, fq.values));
                    stes.push(fq.ste);
                    sats.push(fq.sat);
                }
            });
        }

        let emb_dim = self.emb.dim();
        let hidden = self.lstm1.hidden_size();

        let e = self.emb.forward(ids); // [steps*batch, emb]
        let eq = fake_quantize_data(&e, x_clip, res, self.qcfg);
        let e_dropped = self.drop1.forward(&eq.values, mode);
        let h1 = self
            .lstm1
            .forward(&e_dropped.reshape(&[steps, batch, emb_dim]));
        let h1_flat = h1.reshape(&[steps * batch, hidden]);
        let h1q = fake_quantize_data(&h1_flat, x_clip, res, self.qcfg);
        let h1_dropped = self.drop2.forward(&h1q.values, mode);
        let h2 = self
            .lstm2
            .forward(&h1_dropped.reshape(&[steps, batch, hidden]));
        let h2_flat = h2.reshape(&[steps * batch, hidden]);
        let logits = self.head.forward(&h2_flat, mode);

        if mode.is_train() {
            self.state = Some(FwdState {
                steps,
                batch,
                saved_weights: saved,
                weight_ste: stes,
                weight_sat: sats,
                e_ste: eq.ste,
                e_sat: eq.sat,
                h1_ste: h1q.ste,
                h1_sat: h1q.sat,
                hidden,
                emb_dim,
            });
        } else {
            // Restore the master weights immediately in eval mode.
            self.restore_weights(saved);
        }
        logits
    }

    /// Backward pass from the logits gradient; accumulates gradients into
    /// the full-precision masters (STE) and restores them.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let st = self.state.take().expect("backward before forward");
        let g_h2 = self.head.backward(grad_logits);
        let g_h1d = self
            .lstm2
            .backward(&g_h2.reshape(&[st.steps, st.batch, st.hidden]))
            .reshape_into(&[st.steps * st.batch, st.hidden]);
        let g_h1q = self.drop2.backward(&g_h1d);
        // STE through the h1 data quantizer + PACT to the shared x clip.
        let g_h1 = &g_h1q * &st.h1_ste;
        self.x_clip.grad.data_mut()[0] += g_h1q
            .data()
            .iter()
            .zip(st.h1_sat.data())
            .map(|(&g, &s)| g * s)
            .sum::<f32>();
        let g_ed = self
            .lstm1
            .backward(&g_h1.reshape(&[st.steps, st.batch, st.hidden]))
            .reshape_into(&[st.steps * st.batch, st.emb_dim]);
        let g_eq = self.drop1.backward(&g_ed);
        let g_e = &g_eq * &st.e_ste;
        self.x_clip.grad.data_mut()[0] += g_eq
            .data()
            .iter()
            .zip(st.e_sat.data())
            .map(|(&g, &s)| g * s)
            .sum::<f32>();
        self.emb.backward(&g_e);

        // STE on the LSTM weight gradients + PACT to the shared w clip,
        // then restore the full-precision masters.
        let mut idx = 0usize;
        let mut wclip_grad = 0.0f32;
        for lstm in [&mut self.lstm1, &mut self.lstm2] {
            lstm.visit_params(&mut |p| {
                if p.value.shape().rank() == 2 {
                    wclip_grad += p
                        .grad
                        .data()
                        .iter()
                        .zip(st.weight_sat[idx].data())
                        .map(|(&g, &s)| g * s)
                        .sum::<f32>();
                    let masked = &p.grad * &st.weight_ste[idx];
                    p.grad = masked;
                    idx += 1;
                }
            });
        }
        self.w_clip.grad.data_mut()[0] += wclip_grad;
        self.restore_weights(st.saved_weights);
    }

    fn restore_weights(&mut self, saved: Vec<Tensor>) {
        let mut it = saved.into_iter();
        for lstm in [&mut self.lstm1, &mut self.lstm2] {
            lstm.visit_params(&mut |p| {
                if p.value.shape().rank() == 2 {
                    p.value = it.next().expect("saved weight count mismatch");
                }
            });
        }
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.emb.visit_params(visitor);
        self.lstm1.visit_params(visitor);
        self.lstm2.visit_params(visitor);
        self.head.visit_params(visitor);
        visitor(&mut self.w_clip);
        visitor(&mut self.x_clip);
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Mean cross-entropy (nats/token) over BPTT batches; `exp` of this is
    /// the perplexity reported in Fig. 22 (middle).
    pub fn evaluate_ce(
        &mut self,
        batches: &[(Vec<usize>, Vec<usize>)],
        steps: usize,
        batch: usize,
    ) -> f32 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (input, target) in batches {
            let logits = self.forward(input, steps, batch, Mode::Eval);
            let (ce, _) = mri_nn::loss::cross_entropy(&logits, target);
            total += f64::from(ce) * target.len() as f64;
            count += target.len();
        }
        if count == 0 {
            0.0
        } else {
            (total / count as f64) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mri_core::Resolution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctl() -> Arc<ResolutionControl> {
        Arc::new(ResolutionControl::new(Resolution::Tq {
            alpha: 24,
            beta: 3,
        }))
    }

    fn tiny_lm(rng: &mut StdRng, control: &Arc<ResolutionControl>) -> LstmLm {
        LstmLm::new(rng, 16, 8, 12, 0.0, QuantConfig::paper_8bit(), control)
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let ids: Vec<usize> = (0..20).map(|i| i % 16).collect();
        let logits = lm.forward(&ids, 5, 4, Mode::Eval);
        assert_eq!(logits.dims(), &[20, 16]);
    }

    #[test]
    fn weights_restored_after_eval_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let mut before = Vec::new();
        lm.lstm1.visit_params(&mut |p| before.push(p.value.clone()));
        let ids: Vec<usize> = (0..8).collect();
        lm.forward(&ids, 2, 4, Mode::Eval);
        let mut after = Vec::new();
        lm.lstm1.visit_params(&mut |p| after.push(p.value.clone()));
        for (b, a) in before.iter().zip(after.iter()) {
            assert_eq!(b.data(), a.data(), "weights must be restored after eval");
        }
    }

    #[test]
    fn weights_restored_after_train_step() {
        let mut rng = StdRng::seed_from_u64(2);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let mut before = Vec::new();
        lm.lstm2.visit_params(&mut |p| before.push(p.value.clone()));
        let ids: Vec<usize> = (0..8).collect();
        let logits = lm.forward(&ids, 2, 4, Mode::Train);
        let (_, g) = mri_nn::loss::cross_entropy(&logits, &[1usize; 8]);
        lm.backward(&g);
        let mut after = Vec::new();
        lm.lstm2.visit_params(&mut |p| after.push(p.value.clone()));
        for (b, a) in before.iter().zip(after.iter()) {
            assert_eq!(b.data(), a.data());
        }
    }

    #[test]
    fn training_reduces_perplexity_on_markov_text() {
        let mut rng = StdRng::seed_from_u64(3);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let corpus = mri_data::MarkovCorpus::with_order(7, 16, 6000, 1);
        let batches = corpus.batches(8, 8);
        let eval: Vec<_> = batches[..2].to_vec();
        let before = lm.evaluate_ce(&eval, 8, 8);
        let mut opt = mri_nn::Sgd::new(0.5, 0.9, 0.0);
        for epoch in 0..5 {
            for (input, target) in batches.iter().skip(2).take(40) {
                lm.zero_grad();
                let logits = lm.forward(input, 8, 8, Mode::Train);
                let (_, g) = mri_nn::loss::cross_entropy(&logits, target);
                lm.backward(&g);
                opt.step(|f| lm.visit_params(f));
            }
            let _ = epoch;
        }
        let after = lm.evaluate_ce(&eval, 8, 8);
        assert!(
            after < before - 0.05,
            "cross-entropy should drop: {before} -> {after}"
        );
    }

    #[test]
    fn gate_caches_hit_across_passes_and_refill_after_step() {
        let mut rng = StdRng::seed_from_u64(5);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let n_gates = lm.weight_caches().len() as u64;
        assert!(
            n_gates >= 4,
            "two cells must expose at least 4 gate weights"
        );
        let ids: Vec<usize> = (0..8).collect();

        let sums = |lm: &LstmLm| {
            let h: u64 = lm.weight_caches().iter().map(|c| c.hits()).sum();
            let m: u64 = lm.weight_caches().iter().map(|c| c.misses()).sum();
            (h, m)
        };
        lm.forward(&ids, 2, 4, Mode::Eval);
        assert_eq!(sums(&lm), (0, n_gates), "first pass fills every gate");
        lm.forward(&ids, 2, 4, Mode::Eval);
        assert_eq!(
            sums(&lm),
            (n_gates, n_gates),
            "same weights + clip must hit"
        );

        let logits = lm.forward(&ids, 2, 4, Mode::Train);
        let (_, g) = mri_nn::loss::cross_entropy(&logits, &[1usize; 8]);
        lm.backward(&g);
        let mut opt = mri_nn::Sgd::new(0.1, 0.0, 0.0);
        opt.step(|f| lm.visit_params(f));
        lm.forward(&ids, 2, 4, Mode::Eval);
        assert_eq!(
            sums(&lm),
            (2 * n_gates, 2 * n_gates),
            "an optimizer step must force exactly one refill per gate"
        );
    }

    #[test]
    fn resolution_switch_changes_outputs_deterministically() {
        // The same instance serves every sub-model: switching the shared
        // control changes the logits, and evaluating twice at the same
        // resolution is bit-identical (no hidden state leaks between runs).
        let mut rng = StdRng::seed_from_u64(4);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let ids: Vec<usize> = (0..8).collect();
        control.set_resolution(Resolution::Full);
        let base = lm.forward(&ids, 2, 4, Mode::Eval);
        let base2 = lm.forward(&ids, 2, 4, Mode::Eval);
        assert_eq!(base.data(), base2.data(), "eval must be deterministic");
        control.set_resolution(Resolution::Tq { alpha: 4, beta: 1 });
        let lo = lm.forward(&ids, 2, 4, Mode::Eval);
        assert!(
            (&lo - &base).norm_sq() > 0.0,
            "quantization must perturb the logits"
        );
        // The underlying weight quantization error is strongly monotone in α
        // (the logit-level deviation of an *untrained* net is not a reliable
        // proxy, so we assert at the weight level).
        let mut w = None;
        lm.lstm1.visit_params(&mut |p| {
            if w.is_none() && p.value.shape().rank() == 2 {
                w = Some(p.value.clone());
            }
        });
        let w = w.unwrap();
        let qcfg = mri_core::QuantConfig::paper_8bit();
        let row = w.dim(1);
        let e4 = (&mri_core::fake_quantize_weights(
            &w,
            1.0,
            Resolution::Tq { alpha: 4, beta: 1 },
            qcfg,
            row,
        )
        .values
            - &w)
            .norm_sq();
        let e32 = (&mri_core::fake_quantize_weights(
            &w,
            1.0,
            Resolution::Tq { alpha: 32, beta: 1 },
            qcfg,
            row,
        )
        .values
            - &w)
            .norm_sq();
        assert!(e4 > 10.0 * e32, "α=4 error {e4} vs α=32 error {e32}");
    }
}
