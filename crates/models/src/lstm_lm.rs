//! A two-layer quantized LSTM language model (the WikiText-2 experiment).
//!
//! Weight quantization follows Algorithm 1 exactly — symmetric UQ at the
//! meta bitwidth with a learnable clip, then group TQ at the active budget.
//! Each recurrent cell pairs two [`QParamSite`]s (the
//! input-to-hidden and hidden-to-hidden gate matrices, each with its own
//! PACT clip and reusable weight-term cache) feeding an [`LstmCore`] that
//! runs the gate math against externally supplied — here quantized —
//! weights. Data entering each recurrent layer passes through a
//! [`QActSite`]. The sites own the straight-through backward fold, so the
//! model never swaps weights in and out of the cells and the masters are
//! untouched by any forward pass.

use mri_core::{
    QActSite, QLinear, QParamSite, QuantConfig, QuantMasks, ResolutionControl, WeightTermCache,
};
use mri_nn::{Dropout, Embedding, Layer, LstmCore, Mode, Param};
use mri_tensor::{init, Tensor};
use rand::Rng;
use std::sync::Arc;

/// One quantized LSTM layer: gate weights as quantization sites around a
/// weight-agnostic recurrent core.
struct QLstmCell {
    w_ih: QParamSite,
    w_hh: QParamSite,
    core: LstmCore,
}

impl QLstmCell {
    /// Matches `mri_nn::Lstm::new`'s initialisation draws exactly (Xavier on
    /// both gate matrices, forget-gate bias at 1), so a quantized model seeds
    /// identically to its unquantized twin.
    fn new<R: Rng + ?Sized>(rng: &mut R, input: usize, hidden: usize, qcfg: QuantConfig) -> Self {
        let w_ih = init::xavier_uniform(rng, &[4 * hidden, input], input, hidden);
        let w_hh = init::xavier_uniform(rng, &[4 * hidden, hidden], hidden, hidden);
        QLstmCell {
            w_ih: QParamSite::new(w_ih, qcfg, input),
            w_hh: QParamSite::new(w_hh, qcfg, hidden),
            core: LstmCore::new(input, hidden),
        }
    }

    fn visit_weights(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.w_ih.visit_weight(visitor);
        self.w_hh.visit_weight(visitor);
        self.core.visit_params(visitor);
    }

    fn visit_clips(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.w_ih.visit_clip(visitor);
        self.w_hh.visit_clip(visitor);
    }
}

/// A quantized 2-layer LSTM language model.
pub struct LstmLm {
    emb: Embedding,
    cell1: QLstmCell,
    cell2: QLstmCell,
    drop1: Dropout,
    drop2: Dropout,
    head: QLinear,
    x1: QActSite,
    x2: QActSite,
    control: Arc<ResolutionControl>,
    state: Option<FwdState>,
}

struct FwdState {
    steps: usize,
    batch: usize,
    /// Quantized gate weights in order cell1.ih, cell1.hh, cell2.ih, cell2.hh
    /// (the core's backward recomputes `dx`/`dh` against the same values the
    /// forward multiplied by).
    w_q: [Tensor; 4],
    /// Gate STE/saturation masks, same order.
    w_masks: [QuantMasks; 4],
    e_masks: QuantMasks,
    h1_masks: QuantMasks,
    hidden: usize,
    emb_dim: usize,
}

impl LstmLm {
    /// Builds the model: embedding → LSTM ×2 (with dropout) → quantized
    /// linear decoder, mirroring the paper's §6.4.2 configuration scaled to
    /// CPU size.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        dropout: f32,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        LstmLm {
            emb: Embedding::new(rng, vocab, emb_dim),
            cell1: QLstmCell::new(rng, emb_dim, hidden, qcfg),
            cell2: QLstmCell::new(rng, hidden, hidden, qcfg),
            drop1: Dropout::new(dropout, 11),
            drop2: Dropout::new(dropout, 13),
            head: QLinear::new(rng, hidden, vocab, qcfg, Arc::clone(control)),
            x1: QActSite::new(qcfg),
            x2: QActSite::new(qcfg),
            control: Arc::clone(control),
            state: None,
        }
    }

    /// The per-gate reusable weight-term caches, in order cell1.ih,
    /// cell1.hh, cell2.ih, cell2.hh; the decoder head's cache lives on
    /// [`QLinear::weight_cache`].
    pub fn weight_caches(&self) -> Vec<&WeightTermCache> {
        vec![
            self.cell1.w_ih.cache(),
            self.cell1.w_hh.cache(),
            self.cell2.w_ih.cache(),
            self.cell2.w_hh.cache(),
        ]
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.emb.vocab()
    }

    /// Forward pass over a time-major token batch (`ids[t * batch + b]`),
    /// returning logits `[steps * batch, vocab]`.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != steps * batch`.
    pub fn forward(&mut self, ids: &[usize], steps: usize, batch: usize, mode: Mode) -> Tensor {
        assert_eq!(ids.len(), steps * batch, "token count mismatch");
        let res = self.control.resolution();

        // Quantize every gate matrix through its site; each is served from
        // its term cache, and in eval mode no masks are materialised.
        let q1i = self.cell1.w_ih.quantize(res, mode);
        let q1h = self.cell1.w_hh.quantize(res, mode);
        let q2i = self.cell2.w_ih.quantize(res, mode);
        let q2h = self.cell2.w_hh.quantize(res, mode);

        let emb_dim = self.emb.dim();
        let hidden = self.cell1.core.hidden_size();

        let e = self.emb.forward(ids); // [steps*batch, emb]
        let (eq, e_masks) = self.x1.quantize(&e, res, mode);
        let e_dropped = self.drop1.forward(eq.as_ref(), mode);
        let h1 = self.cell1.core.forward(
            &e_dropped.reshape(&[steps, batch, emb_dim]),
            &q1i.values,
            &q1h.values,
        );
        let h1_flat = h1.reshape(&[steps * batch, hidden]);
        let (h1q, h1_masks) = self.x2.quantize(&h1_flat, res, mode);
        let h1_dropped = self.drop2.forward(h1q.as_ref(), mode);
        let h2 = self.cell2.core.forward(
            &h1_dropped.reshape(&[steps, batch, hidden]),
            &q2i.values,
            &q2h.values,
        );
        let h2_flat = h2.reshape(&[steps * batch, hidden]);
        let logits = self.head.forward(&h2_flat, mode);

        if mode.is_train() {
            let expect = "train-mode quantization carries masks";
            self.state = Some(FwdState {
                steps,
                batch,
                w_q: [q1i.values, q1h.values, q2i.values, q2h.values],
                w_masks: [
                    q1i.masks.expect(expect),
                    q1h.masks.expect(expect),
                    q2i.masks.expect(expect),
                    q2h.masks.expect(expect),
                ],
                e_masks: e_masks.expect(expect),
                h1_masks: h1_masks.expect(expect),
                hidden,
                emb_dim,
            });
        }
        logits
    }

    /// Backward pass from the logits gradient; the sites fold the quantized
    /// gate gradients straight through to the full-precision masters (STE)
    /// and route saturation to the per-gate PACT clips.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let st = self.state.take().expect("backward before forward");
        let g_h2 = self.head.backward(grad_logits);
        let (g_h1d, gw2i, gw2h) = self.cell2.core.backward(
            &g_h2.reshape(&[st.steps, st.batch, st.hidden]),
            &st.w_q[2],
            &st.w_q[3],
        );
        self.cell2.w_ih.fold_backward(&gw2i, &st.w_masks[2]);
        self.cell2.w_hh.fold_backward(&gw2h, &st.w_masks[3]);
        let g_h1q = self
            .drop2
            .backward(&g_h1d.reshape_into(&[st.steps * st.batch, st.hidden]));
        let g_h1 = self.x2.fold_backward(&g_h1q, &st.h1_masks);
        let (g_ed, gw1i, gw1h) = self.cell1.core.backward(
            &g_h1.reshape(&[st.steps, st.batch, st.hidden]),
            &st.w_q[0],
            &st.w_q[1],
        );
        self.cell1.w_ih.fold_backward(&gw1i, &st.w_masks[0]);
        self.cell1.w_hh.fold_backward(&gw1h, &st.w_masks[1]);
        let g_eq = self
            .drop1
            .backward(&g_ed.reshape_into(&[st.steps * st.batch, st.emb_dim]));
        let g_e = self.x1.fold_backward(&g_eq, &st.e_masks);
        self.emb.backward(&g_e);
    }

    /// Visits every trainable parameter. Weights lead (embedding, both
    /// cells' gates and biases, decoder head) and the quantizer clips —
    /// per-gate weight clips, then the two data clips — trail, preserving
    /// the seed-era weight ordering for checkpoints.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.emb.visit_params(visitor);
        self.cell1.visit_weights(visitor);
        self.cell2.visit_weights(visitor);
        self.head.visit_params(visitor);
        self.cell1.visit_clips(visitor);
        self.cell2.visit_clips(visitor);
        self.x1.visit_clip(visitor);
        self.x2.visit_clip(visitor);
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Mean cross-entropy (nats/token) over BPTT batches; `exp` of this is
    /// the perplexity reported in Fig. 22 (middle).
    pub fn evaluate_ce(
        &mut self,
        batches: &[(Vec<usize>, Vec<usize>)],
        steps: usize,
        batch: usize,
    ) -> f32 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (input, target) in batches {
            // lint: allow(frozen-discipline) — recurrent unrolling is not
            // expressible as a frozen plan yet; stays on the legacy path.
            let logits = self.forward(input, steps, batch, Mode::Eval);
            let (ce, _) = mri_nn::loss::cross_entropy(&logits, target);
            total += f64::from(ce) * target.len() as f64;
            count += target.len();
        }
        if count == 0 {
            0.0
        } else {
            (total / count as f64) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mri_core::Resolution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctl() -> Arc<ResolutionControl> {
        Arc::new(ResolutionControl::new(Resolution::Tq {
            alpha: 24,
            beta: 3,
        }))
    }

    fn tiny_lm(rng: &mut StdRng, control: &Arc<ResolutionControl>) -> LstmLm {
        LstmLm::new(rng, 16, 8, 12, 0.0, QuantConfig::paper_8bit(), control)
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let ids: Vec<usize> = (0..20).map(|i| i % 16).collect();
        let logits = lm.forward(&ids, 5, 4, Mode::Eval);
        assert_eq!(logits.dims(), &[20, 16]);
    }

    #[test]
    fn masters_untouched_by_eval_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let mut before = Vec::new();
        lm.cell1
            .visit_weights(&mut |p| before.push(p.value.clone()));
        let ids: Vec<usize> = (0..8).collect();
        lm.forward(&ids, 2, 4, Mode::Eval);
        let mut after = Vec::new();
        lm.cell1.visit_weights(&mut |p| after.push(p.value.clone()));
        for (b, a) in before.iter().zip(after.iter()) {
            assert_eq!(b.data(), a.data(), "masters must survive eval untouched");
        }
    }

    #[test]
    fn masters_untouched_by_train_pass() {
        let mut rng = StdRng::seed_from_u64(2);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let mut before = Vec::new();
        lm.cell2
            .visit_weights(&mut |p| before.push(p.value.clone()));
        let ids: Vec<usize> = (0..8).collect();
        let logits = lm.forward(&ids, 2, 4, Mode::Train);
        let (_, g) = mri_nn::loss::cross_entropy(&logits, &[1usize; 8]);
        lm.backward(&g);
        let mut after = Vec::new();
        lm.cell2.visit_weights(&mut |p| after.push(p.value.clone()));
        for (b, a) in before.iter().zip(after.iter()) {
            assert_eq!(b.data(), a.data());
        }
    }

    #[test]
    fn training_reduces_perplexity_on_markov_text() {
        let mut rng = StdRng::seed_from_u64(3);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let corpus = mri_data::MarkovCorpus::with_order(7, 16, 6000, 1);
        let batches = corpus.batches(8, 8);
        let eval: Vec<_> = batches[..2].to_vec();
        let before = lm.evaluate_ce(&eval, 8, 8);
        let mut opt = mri_nn::Sgd::new(0.5, 0.9, 0.0);
        for epoch in 0..5 {
            for (input, target) in batches.iter().skip(2).take(40) {
                lm.zero_grad();
                let logits = lm.forward(input, 8, 8, Mode::Train);
                let (_, g) = mri_nn::loss::cross_entropy(&logits, target);
                lm.backward(&g);
                opt.step(|f| lm.visit_params(f));
            }
            let _ = epoch;
        }
        let after = lm.evaluate_ce(&eval, 8, 8);
        assert!(
            after < before - 0.05,
            "cross-entropy should drop: {before} -> {after}"
        );
    }

    #[test]
    fn gate_caches_hit_across_passes_and_refill_after_step() {
        let mut rng = StdRng::seed_from_u64(5);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let n_gates = lm.weight_caches().len() as u64;
        assert_eq!(n_gates, 4, "two cells expose four gate weights");
        let ids: Vec<usize> = (0..8).collect();

        let sums = |lm: &LstmLm| {
            let h: u64 = lm.weight_caches().iter().map(|c| c.hits()).sum();
            let m: u64 = lm.weight_caches().iter().map(|c| c.misses()).sum();
            (h, m)
        };
        lm.forward(&ids, 2, 4, Mode::Eval);
        assert_eq!(sums(&lm), (0, n_gates), "first pass fills every gate");
        lm.forward(&ids, 2, 4, Mode::Eval);
        assert_eq!(
            sums(&lm),
            (n_gates, n_gates),
            "same weights + clip must hit"
        );

        let logits = lm.forward(&ids, 2, 4, Mode::Train);
        let (_, g) = mri_nn::loss::cross_entropy(&logits, &[1usize; 8]);
        lm.backward(&g);
        let mut opt = mri_nn::Sgd::new(0.1, 0.0, 0.0);
        opt.step(|f| lm.visit_params(f));
        lm.forward(&ids, 2, 4, Mode::Eval);
        assert_eq!(
            sums(&lm),
            (2 * n_gates, 2 * n_gates),
            "an optimizer step must force exactly one refill per gate"
        );
    }

    #[test]
    fn lstm_gate_gradcheck_full_resolution() {
        // At Resolution::Full the sites' quantizers are identities, so the
        // gradient folded into a gate master must match finite differences
        // of the cross-entropy loss through two recurrent layers.
        let mut rng = StdRng::seed_from_u64(6);
        let control = Arc::new(ResolutionControl::new(Resolution::Full));
        let mut lm = LstmLm::new(
            &mut rng,
            16,
            8,
            12,
            0.0,
            QuantConfig::paper_8bit(),
            &control,
        );
        let ids: Vec<usize> = (0..8).map(|i| (i * 3) % 16).collect();
        let targets: Vec<usize> = (0..8).map(|i| (i * 5 + 1) % 16).collect();
        lm.zero_grad();
        let logits = lm.forward(&ids, 2, 4, Mode::Train);
        let (_, g) = mri_nn::loss::cross_entropy(&logits, &targets);
        lm.backward(&g);
        let mut g_w = None;
        lm.cell1
            .w_ih
            .visit_weight(&mut |p| g_w = Some(p.grad.clone()));
        let g_w = g_w.unwrap();

        let eps = 1e-2;
        for idx in [0usize, 7, 33, 90] {
            let loss_at = |delta: f32, lm: &mut LstmLm| {
                lm.cell1
                    .w_ih
                    .visit_weight(&mut |p| p.value.data_mut()[idx] += delta);
                let logits = lm.forward(&ids, 2, 4, Mode::Eval);
                let (l, _) = mri_nn::loss::cross_entropy(&logits, &targets);
                lm.cell1
                    .w_ih
                    .visit_weight(&mut |p| p.value.data_mut()[idx] -= delta);
                l
            };
            let num = (loss_at(eps, &mut lm) - loss_at(-eps, &mut lm)) / (2.0 * eps);
            assert!(
                (num - g_w.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "gate grad {idx}: numeric {num} vs analytic {}",
                g_w.data()[idx]
            );
        }
    }

    #[test]
    fn resolution_switch_changes_outputs_deterministically() {
        // The same instance serves every sub-model: switching the shared
        // control changes the logits, and evaluating twice at the same
        // resolution is bit-identical (no hidden state leaks between runs).
        let mut rng = StdRng::seed_from_u64(4);
        let control = ctl();
        let mut lm = tiny_lm(&mut rng, &control);
        let ids: Vec<usize> = (0..8).collect();
        control.set_resolution(Resolution::Full);
        let base = lm.forward(&ids, 2, 4, Mode::Eval);
        let base2 = lm.forward(&ids, 2, 4, Mode::Eval);
        assert_eq!(base.data(), base2.data(), "eval must be deterministic");
        control.set_resolution(Resolution::Tq { alpha: 4, beta: 1 });
        let lo = lm.forward(&ids, 2, 4, Mode::Eval);
        assert!(
            (&lo - &base).norm_sq() > 0.0,
            "quantization must perturb the logits"
        );
        // The underlying weight quantization error is strongly monotone in α
        // (the logit-level deviation of an *untrained* net is not a reliable
        // proxy, so we assert at the weight level).
        let w = lm.cell1.w_ih.master().clone();
        let qcfg = mri_core::QuantConfig::paper_8bit();
        let row = w.dim(1);
        let e4 = (&mri_core::fake_quantize_weights(
            &w,
            1.0,
            Resolution::Tq { alpha: 4, beta: 1 },
            qcfg,
            row,
        )
        .values
            - &w)
            .norm_sq();
        let e32 = (&mri_core::fake_quantize_weights(
            &w,
            1.0,
            Resolution::Tq { alpha: 32, beta: 1 },
            qcfg,
            row,
        )
        .values
            - &w)
            .norm_sq();
        assert!(e4 > 10.0 * e32, "α=4 error {e4} vs α=32 error {e32}");
    }
}
