//! A single-scale grid detector in the YOLO family, built from quantized
//! convolutions (the COCO experiment stand-in, §6.4.3).

use mri_core::{QConv2d, QuantConfig, ResolutionControl};
use mri_data::detection::{average_precision_50, BoundingBox, Detection, NUM_CLASSES};
use mri_nn::{BatchNorm2d, Layer, Mode, Param, Relu, Sequential};
use mri_tensor::conv::Conv2dCfg;
use mri_tensor::Tensor;
use rand::Rng;
use std::sync::Arc;

/// A tiny single-scale YOLO-style detector.
///
/// Input `[N, 3, S, S]`; output `[N, 5 + classes, S/8, S/8]` where channel
/// 0 is objectness, 1–4 are (cx offset, cy offset, w, h), the rest class
/// scores. All predictions are raw logits; the loss and decoder apply
/// sigmoids.
pub struct TinyYolo {
    net: Sequential,
    grid: usize,
    input: usize,
}

impl TinyYolo {
    /// Builds the detector for `input × input` images (grid = input / 8).
    ///
    /// # Panics
    ///
    /// Panics unless `input` is a multiple of 8 and at least 16.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        input: usize,
        qcfg: QuantConfig,
        control: &Arc<ResolutionControl>,
    ) -> Self {
        assert!(
            input >= 16 && input.is_multiple_of(8),
            "input must be a multiple of 8, >= 16"
        );
        let mut net = Sequential::new();
        let widths = [16usize, 32, 48];
        let mut in_ch = 3;
        for w in widths {
            net.push(QConv2d::new(
                rng,
                in_ch,
                w,
                Conv2dCfg::new(3, 2, 1),
                qcfg,
                Arc::clone(control),
            ));
            net.push(BatchNorm2d::new(w));
            net.push(Relu::new());
            in_ch = w;
        }
        net.push(QConv2d::new(
            rng,
            in_ch,
            in_ch,
            Conv2dCfg::same(3),
            qcfg,
            Arc::clone(control),
        ));
        net.push(BatchNorm2d::new(in_ch));
        net.push(Relu::new());
        net.push(QConv2d::new(
            rng,
            in_ch,
            5 + NUM_CLASSES,
            Conv2dCfg::new(1, 1, 0),
            qcfg,
            Arc::clone(control),
        ));
        TinyYolo {
            net,
            grid: input / 8,
            input,
        }
    }

    /// Grid side length.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Expected input side length.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Decodes raw predictions into scored detections.
    pub fn decode(pred: &Tensor, threshold: f32, image_offset: usize) -> Vec<Detection> {
        let (n, c, gh, gw) = (pred.dim(0), pred.dim(1), pred.dim(2), pred.dim(3));
        let classes = c - 5;
        let mut out = Vec::new();
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
        for b in 0..n {
            for gy in 0..gh {
                for gx in 0..gw {
                    let obj = sig(pred.at(&[b, 0, gy, gx]));
                    if obj < threshold {
                        continue;
                    }
                    let cx = (gx as f32 + sig(pred.at(&[b, 1, gy, gx]))) / gw as f32;
                    let cy = (gy as f32 + sig(pred.at(&[b, 2, gy, gx]))) / gh as f32;
                    let w = sig(pred.at(&[b, 3, gy, gx]));
                    let h = sig(pred.at(&[b, 4, gy, gx]));
                    let (mut best_c, mut best_s) = (0usize, f32::NEG_INFINITY);
                    for cl in 0..classes {
                        let s = pred.at(&[b, 5 + cl, gy, gx]);
                        if s > best_s {
                            best_s = s;
                            best_c = cl;
                        }
                    }
                    out.push(Detection {
                        bbox: BoundingBox {
                            cx,
                            cy,
                            w,
                            h,
                            class: best_c,
                        },
                        score: obj,
                        image: image_offset + b,
                    });
                }
            }
        }
        out
    }

    /// Evaluates AP@0.5 over a batch list, returning `(ap, term_pairs)`.
    pub fn evaluate_ap(
        &mut self,
        control: &ResolutionControl,
        batches: &[(Tensor, Tensor, Vec<Vec<BoundingBox>>)],
        threshold: f32,
    ) -> (f32, u64) {
        control.reset_counters();
        let mut dets = Vec::new();
        let mut truths = Vec::new();
        for (x, _, boxes) in batches {
            // lint: allow(frozen-discipline) — detection eval is not yet
            // rewired through `FrozenModel` (decode needs raw grid logits).
            let pred = self.net.forward(x, Mode::Eval);
            dets.extend(TinyYolo::decode(&pred, threshold, truths.len()));
            truths.extend(boxes.iter().cloned());
        }
        (average_precision_50(&dets, &truths), control.term_pairs())
    }
}

impl Layer for TinyYolo {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.dim(2), self.input, "wrong input size");
        self.net.forward(x, mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.net.backward(grad_out)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(visitor);
    }

    fn describe(&self) -> String {
        format!("tiny_yolo(grid {}x{})", self.grid, self.grid)
    }
}

/// The detection training loss: BCE objectness everywhere, plus box MSE and
/// class BCE on positive cells. Returns `(loss, grad_wrt_pred)`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn detection_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.dims(), target.dims(), "pred/target shape mismatch");
    let (n, c, gh, gw) = (pred.dim(0), pred.dim(1), pred.dim(2), pred.dim(3));
    let classes = c - 5;
    let mut grad = Tensor::zeros(pred.dims());
    let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
    let cells = (n * gh * gw) as f32;
    let mut loss = 0.0f32;
    let box_w = 5.0f32;

    for b in 0..n {
        for gy in 0..gh {
            for gx in 0..gw {
                let t_obj = target.at(&[b, 0, gy, gx]);
                let p_obj = pred.at(&[b, 0, gy, gx]);
                // Stable BCE on the objectness logit.
                loss +=
                    (p_obj.max(0.0) - p_obj * t_obj + (1.0 + (-p_obj.abs()).exp()).ln()) / cells;
                *grad.at_mut(&[b, 0, gy, gx]) = (sig(p_obj) - t_obj) / cells;
                if t_obj > 0.5 {
                    // Box terms: sigmoid-squashed predictions vs targets.
                    for (ch, &t) in [
                        target.at(&[b, 1, gy, gx]),
                        target.at(&[b, 2, gy, gx]),
                        target.at(&[b, 3, gy, gx]),
                        target.at(&[b, 4, gy, gx]),
                    ]
                    .iter()
                    .enumerate()
                    {
                        let p = pred.at(&[b, 1 + ch, gy, gx]);
                        let sp = sig(p);
                        let d = sp - t;
                        loss += box_w * d * d / cells;
                        *grad.at_mut(&[b, 1 + ch, gy, gx]) =
                            box_w * 2.0 * d * sp * (1.0 - sp) / cells;
                    }
                    for cl in 0..classes {
                        let t = target.at(&[b, 5 + cl, gy, gx]);
                        let p = pred.at(&[b, 5 + cl, gy, gx]);
                        loss += (p.max(0.0) - p * t + (1.0 + (-p.abs()).exp()).ln()) / cells;
                        *grad.at_mut(&[b, 5 + cl, gy, gx]) = (sig(p) - t) / cells;
                    }
                }
            }
        }
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mri_core::Resolution;
    use mri_data::ShapesDetection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctl() -> Arc<ResolutionControl> {
        Arc::new(ResolutionControl::new(Resolution::Tq {
            alpha: 32,
            beta: 4,
        }))
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let control = ctl();
        let mut y = TinyYolo::new(&mut rng, 32, QuantConfig::paper_8bit(), &control);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let p = y.forward(&x, Mode::Eval);
        assert_eq!(p.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn loss_gradcheck_on_random_cells() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ds = ShapesDetection::new(2, 32, 4);
        let (_, target, _) = ds.batch(2);
        let pred = mri_tensor::init::normal(&mut rng, target.dims(), 0.0, 1.0);
        let (_, g) = detection_loss(&pred, &target);
        let eps = 1e-2;
        for idx in [0usize, 17, 40, 90, 120] {
            let mut pp = pred.clone();
            pp.data_mut()[idx] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[idx] -= eps;
            let num =
                (detection_loss(&pp, &target).0 - detection_loss(&pm, &target).0) / (2.0 * eps);
            assert!(
                (num - g.data()[idx]).abs() < 0.02 * (1.0 + num.abs()) + 1e-4,
                "grad {idx}: numeric {num} vs analytic {}",
                g.data()[idx]
            );
        }
    }

    #[test]
    fn perfect_logits_give_small_loss() {
        let mut ds = ShapesDetection::new(3, 32, 4);
        let (_, target, _) = ds.batch(2);
        // Build logits that sigmoid to the targets.
        let mut pred = Tensor::zeros(target.dims());
        for i in 0..target.len() {
            let t = target.data()[i];
            pred.data_mut()[i] = if t > 0.5 { 12.0 } else { -12.0 };
        }
        // Box channels need logit(sigmoid) = target in (0, 1).
        let (n, _, gh, gw) = (target.dim(0), target.dim(1), target.dim(2), target.dim(3));
        for b in 0..n {
            for gy in 0..gh {
                for gx in 0..gw {
                    if target.at(&[b, 0, gy, gx]) > 0.5 {
                        for ch in 1..5 {
                            let t = target.at(&[b, ch, gy, gx]).clamp(1e-4, 1.0 - 1e-4);
                            *pred.at_mut(&[b, ch, gy, gx]) = (t / (1.0 - t)).ln();
                        }
                    }
                }
            }
        }
        let (loss, _) = detection_loss(&pred, &target);
        assert!(loss < 0.01, "loss {loss}");
    }

    #[test]
    fn decode_respects_threshold() {
        let mut pred = Tensor::full(&[1, 8, 2, 2], -10.0);
        *pred.at_mut(&[0, 0, 1, 1]) = 10.0; // one confident cell
        let dets = TinyYolo::decode(&pred, 0.5, 0);
        assert_eq!(dets.len(), 1);
        assert!(dets[0].bbox.cx > 0.5 && dets[0].bbox.cy > 0.5);
    }

    #[test]
    fn short_training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(4);
        let control = ctl();
        let mut model = TinyYolo::new(&mut rng, 16, QuantConfig::paper_8bit(), &control);
        let mut ds = ShapesDetection::new(5, 16, 2);
        let (x, t, _) = ds.batch(8);
        let mut opt = mri_nn::Sgd::new(0.05, 0.9, 1e-4);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..10 {
            model.visit_params(&mut |p| p.zero_grad());
            let pred = model.forward(&x, Mode::Train);
            let (l, g) = detection_loss(&pred, &t);
            model.backward(&g);
            opt.step(|f| model.visit_params(f));
            first.get_or_insert(l);
            last = l;
        }
        assert!(last < first.unwrap(), "loss {first:?} -> {last}");
    }
}
