//! `mri-sync`: the workspace's only doorway to synchronisation primitives.
//!
//! Every atomic, lock, once-cell and scoped thread in the workspace is
//! declared through this crate instead of `std::sync` / `parking_lot` /
//! `std::thread` directly (`xtask lint` rule `raw-sync` enforces it). In a
//! normal build the shim is zero-cost — the types *are* the std /
//! `parking_lot` types, re-exported. Under `RUSTFLAGS="--cfg loom"` they
//! compile to [`loom`](https://docs.rs/loom) model-checking types instead,
//! so the concurrency tests in `crates/sync/tests/`,
//! `crates/telemetry/tests/` and `crates/core/tests/` can exhaustively
//! explore thread interleavings of the real production code paths: the
//! weight-term cache fill/invalidation handoff, lazy mask construction and
//! the telemetry counter registry.
//!
//! # What is shimmed
//!
//! * [`atomic`] — the atomic integer/bool types plus [`atomic::Ordering`].
//! * [`Mutex`] / [`RwLock`] / [`Condvar`] — `parking_lot`-style (guards
//!   returned directly, no poisoning; consume-style condvar `wait`) in
//!   normal builds, loom-checked under `cfg(loom)`.
//! * [`OnceLock`] — `std::sync::OnceLock` normally; under loom a
//!   double-checked lock built from loom primitives so first-use
//!   initialisation races are model-checked.
//! * [`thread::scope`] — `std::thread::scope` normally; a join-on-exit
//!   wrapper over `loom::thread::spawn` under loom.
//! * [`pool`] — the persistent worker pool every hot kernel dispatches
//!   through (`pool::scope` / `pool::parallel_for`); built entirely from
//!   the primitives above, so explicit pools are loom-checkable.
//! * [`Arc`] — `std::sync::Arc` / `loom::sync::Arc`.
//!
//! # What stays on std
//!
//! `static` items cannot hold loom types (their constructors are not
//! `const`), so process-wide singletons — the global telemetry registry and
//! the lazily-bound global metric handles — remain `std::sync::OnceLock`
//! with a `// lint: allow(raw-sync)` escape. Loom models must initialise
//! any such static they touch on the model's main thread *before* spawning
//! model threads; see `DESIGN.md` §10.

pub mod atomic;
mod lock;
mod once;
pub mod pool;
pub mod thread;

pub use lock::{Condvar, Mutex, RwLock};
pub use once::OnceLock;

#[cfg(not(loom))]
pub use std::sync::Arc;

#[cfg(loom)]
pub use loom::sync::Arc;

#[cfg(all(test, not(loom)))]
mod tests {
    use super::atomic::{AtomicU64, Ordering};
    use super::{Mutex, OnceLock, RwLock};

    #[test]
    fn shim_types_are_std_types_in_normal_builds() {
        // The whole point of the shim: zero-cost outside `cfg(loom)`.
        fn assert_same<T: 'static>(_: &T) -> std::any::TypeId {
            std::any::TypeId::of::<T>()
        }
        let a = AtomicU64::new(0);
        assert_eq!(
            assert_same(&a),
            std::any::TypeId::of::<std::sync::atomic::AtomicU64>()
        );
        let o: OnceLock<u32> = OnceLock::new();
        assert_eq!(
            assert_same(&o),
            std::any::TypeId::of::<std::sync::OnceLock<u32>>()
        );
    }

    #[test]
    fn locks_expose_parking_lot_style_guards() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn scope_joins_workers_before_returning() {
        let c = AtomicU64::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                // ordering: counting only; no other memory is published.
                s.spawn(|| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // ordering: scope join is the synchronisation edge.
        assert_eq!(c.load(Ordering::Relaxed), 4);
    }
}
