//! Lazily-initialised cells: `std::sync::OnceLock` in normal builds, a
//! loom-checked double-checked lock under `cfg(loom)`.
//!
//! The loom implementation is deliberately the *textbook* double-checked
//! pattern — an `AtomicBool` fast path over a mutex-guarded write — because
//! that is exactly the shape of the lazy initialisation this workspace
//! relies on (the weight-term cache's per-entry gradient masks, lazily
//! bound global metric handles). The loom test
//! `crates/sync/tests/loom_primitives.rs` exhaustively checks that the
//! initialiser runs at most once and that every reader observes the fully
//! written value.

#[cfg(not(loom))]
pub use std::sync::OnceLock;

#[cfg(loom)]
pub use loom_impl::OnceLock;

#[cfg(loom)]
mod loom_impl {
    use loom::cell::UnsafeCell;
    use loom::sync::atomic::{AtomicBool, Ordering};
    use loom::sync::Mutex;

    /// Subset of the `std::sync::OnceLock` API used by this workspace,
    /// built from loom primitives so initialisation races are
    /// model-checked.
    pub struct OnceLock<T> {
        /// True only after `value` holds a fully constructed `T`.
        ready: AtomicBool,
        /// Serialises initialisers; the fast path never touches it.
        init: Mutex<()>,
        value: UnsafeCell<Option<T>>,
    }

    // SAFETY: `value` is written exactly once, before `ready` is released;
    // afterwards all access is shared-read. `T: Send` covers the write from
    // an arbitrary thread, `T: Sync` the shared reads.
    unsafe impl<T: Send + Sync> Sync for OnceLock<T> {}
    // SAFETY: moving the cell moves the (at most one) `T` with it.
    unsafe impl<T: Send> Send for OnceLock<T> {}

    impl<T> Default for OnceLock<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> OnceLock<T> {
        pub fn new() -> Self {
            OnceLock {
                ready: AtomicBool::new(false),
                init: Mutex::new(()),
                value: UnsafeCell::new(None),
            }
        }

        pub fn get(&self) -> Option<&T> {
            // ordering: acquire pairs with the release store in
            // `get_or_init`; it makes the initialiser's write to `value`
            // visible before `ready` reads true.
            if self.ready.load(Ordering::Acquire) {
                let ptr = self.value.with(|p| p);
                // SAFETY: `ready` is only set after `value` is written, and
                // `value` is never written again, so the shared read cannot
                // race a write.
                unsafe { (*ptr).as_ref() }
            } else {
                None
            }
        }

        pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
            if self.get().is_none() {
                let _guard = self.init.lock().expect("once-lock init mutex poisoned");
                // ordering: relaxed is enough under the mutex — only one
                // initialiser can be here, and it (re)reads its own store.
                if !self.ready.load(Ordering::Relaxed) {
                    let v = f();
                    // SAFETY: `ready` is false and we hold the init mutex:
                    // no other thread reads (fast path rejects) or writes
                    // (mutex excludes) `value` concurrently.
                    self.value.with_mut(|p| unsafe { *p = Some(v) });
                    // ordering: release publishes the completed write of
                    // `value` to every future acquire load of `ready`.
                    self.ready.store(true, Ordering::Release);
                }
            }
            self.get().expect("once-lock initialised above")
        }
    }
}
