//! Atomic types, re-exported from std or loom depending on `cfg(loom)`.
//!
//! The `xtask lint` rule `ordering-comment` requires every `Ordering::`
//! choice at a call site to carry a `// ordering:` justification; the rule
//! applies to this crate too.

#[cfg(not(loom))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};

#[cfg(loom)]
pub use loom::sync::atomic::{
    fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};
