//! Threads: `std::thread` scoped spawning normally, loom threads under
//! `cfg(loom)`.
//!
//! Call sites use the std 1.63 scoped-thread shape:
//!
//! ```
//! let total = mri_sync::atomic::AtomicU64::new(0);
//! mri_sync::thread::scope(|s| {
//!     // ordering: counting only; the scope join publishes the result.
//!     s.spawn(|| total.fetch_add(1, mri_sync::atomic::Ordering::Relaxed));
//! });
//! ```
//!
//! Under loom the same API is emulated on `loom::thread::spawn`: every
//! spawned closure is joined before `scope` returns (also on panic), which
//! is the property that makes the borrow-shortening below sound.

#[cfg(not(loom))]
pub use std::thread::{scope, spawn, yield_now, JoinHandle, Scope};

#[cfg(loom)]
pub use loom_impl::{scope, Scope};

#[cfg(loom)]
pub use loom::thread::{spawn, yield_now, JoinHandle};

#[cfg(loom)]
mod loom_impl {
    use std::cell::RefCell;
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Scoped-spawn handle mirroring the subset of `std::thread::Scope`
    /// the workspace uses (`spawn` with a borrowed closure).
    pub struct Scope<'scope, 'env: 'scope> {
        handles: RefCell<Vec<loom::thread::JoinHandle<()>>>,
        _scope: PhantomData<&'scope mut &'scope ()>,
        _env: PhantomData<&'env mut &'env ()>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F>(&'scope self, f: F)
        where
            F: FnOnce() + Send + 'scope,
        {
            let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
            // SAFETY: `scope` joins every spawned thread before it returns,
            // including when the body panics, so the closure (and anything
            // it borrows from 'scope/'env) outlives the thread running it.
            let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
            self.handles.borrow_mut().push(loom::thread::spawn(boxed));
        }
    }

    /// Loom-mode `std::thread::scope`: runs `f`, then joins every thread it
    /// spawned; worker panics (or a panicking body) fail the surrounding
    /// loom model.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let s = Scope {
            handles: RefCell::new(Vec::new()),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
        let mut worker_panicked = false;
        // The 'scope unification keeps a shared borrow of `s` alive here,
        // so the handles leave through the RefCell rather than by moving.
        let handles = std::mem::take(&mut *s.handles.borrow_mut());
        for handle in handles {
            worker_panicked |= handle.join().is_err();
        }
        match result {
            Err(body_panic) => resume_unwind(body_panic),
            Ok(_) if worker_panicked => panic!("scoped worker thread panicked"),
            Ok(v) => v,
        }
    }
}
