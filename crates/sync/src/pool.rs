//! A persistent worker pool with deterministic blocked-range dispatch —
//! the substrate every hot kernel in the workspace runs on (DESIGN.md §13).
//!
//! # Why not per-call scoped threads
//!
//! The GEMM/conv/cache kernels used to spawn and join OS threads on every
//! large call (`mri_sync::thread::scope`), paying thread start-up latency
//! per GEMM and re-reading `available_parallelism` each time. The pool
//! spawns its workers once (lazily, on first parallel dispatch) and hands
//! them jobs through a mutex-protected queue + condvar.
//!
//! # Determinism contract
//!
//! Parallel kernels must produce bit-identical f32 results at every
//! `MRI_THREADS` setting. The pool's side of the contract: a
//! [`Pool::parallel_for`] range is partitioned into *fixed-size* grains —
//! chunk boundaries depend only on `(range, grain)`, never on the worker
//! count — and with zero workers the whole range runs inline on the
//! caller. The caller's side: each index's outputs must be computed
//! independently of how the range is partitioned (all accumulation for one
//! output element happens inside a single grain). Under that contract,
//! which worker executes which grain — the only thing scheduling decides —
//! cannot affect results.
//!
//! # Blocking and panics
//!
//! [`Pool::scope`] mirrors `std::thread::scope`: jobs may borrow from the
//! caller's stack, every spawned job is guaranteed to have finished when
//! `scope` returns, and the first job panic is resumed on the caller after
//! the group drains. While a scope waits, the calling thread *participates*
//! — it pops and executes queued jobs itself — so a zero-worker pool is
//! simply a serial loop and nested scopes cannot deadlock on a full queue.
//!
//! # Loom
//!
//! The pool is built exclusively from `mri-sync` primitives, so explicit
//! [`Pool`] instances are model-checked under `RUSTFLAGS="--cfg loom"`
//! (`crates/sync/tests/loom_pool.rs`: submit/steal/shutdown, panic
//! propagation, no lost wakeups). The *global* pool lives in a process-wide
//! static, which loom cannot model; under `cfg(loom)` the free functions
//! ([`scope`], [`parallel_for`]) therefore dispatch onto a fresh
//! zero-worker pool, i.e. run inline on the model thread.

use crate::atomic::{AtomicU64, Ordering};
use crate::lock::{Condvar, Mutex};
use crate::thread;
use crate::Arc;
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A queued job with its lifetime erased; see the `SAFETY` note in
/// [`Scope::spawn`] for why the erasure is sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Join-group bookkeeping shared by one [`Pool::scope`] call.
struct GroupState {
    /// Jobs spawned into the scope that have not finished executing.
    remaining: usize,
    /// First panic payload captured from a job, resumed by `scope`.
    panic: Option<Box<dyn Any + Send + 'static>>,
}

struct Group {
    state: Mutex<GroupState>,
    /// Signalled (under the `state` lock) when `remaining` reaches zero.
    done: Condvar,
}

impl Group {
    fn new() -> Self {
        Group {
            state: Mutex::new(GroupState {
                remaining: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }
}

/// One unit of queued work: the job plus the group it reports back to.
struct Task {
    group: Arc<Group>,
    run: Job,
}

impl Task {
    /// Runs the job, capturing a panic into the group instead of unwinding
    /// the executing thread, then retires the task. Notifying under the
    /// group lock closes the decrement→notify window: a `scope` waiter
    /// holds that same lock from its `remaining` check into `wait`, so the
    /// wakeup cannot be lost.
    fn execute(self) {
        let Task { group, run } = self;
        let result = catch_unwind(AssertUnwindSafe(run));
        let mut g = group.state.lock();
        if let Err(payload) = result {
            if g.panic.is_none() {
                g.panic = Some(payload);
            }
        }
        g.remaining -= 1;
        if g.remaining == 0 {
            group.done.notify_all();
        }
    }
}

struct QueueState {
    queue: VecDeque<Task>,
    /// Set once by `Pool::drop`; workers exit when the queue is drained.
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when a task is queued or shutdown begins.
    work: Condvar,
    /// Jobs executed over the pool's lifetime (stats; includes jobs run
    /// inline on zero-worker pools and by participating scope callers).
    jobs_run: AtomicU64,
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut st = shared.state.lock();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    break Some(t);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work.wait(st);
            }
        };
        match task {
            Some(t) => t.execute(),
            // Shutdown observed on an empty queue: every queued task has
            // been popped (here or by a participant), so exiting cannot
            // strand work.
            None => return,
        }
    }
}

/// A persistent worker pool. Most code uses the process-global pool via the
/// free functions [`scope`] / [`parallel_for`] / [`lanes`]; explicit
/// instances exist for loom models and the thread-count-invariance tests
/// (via [`with_pool`]).
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

impl Pool {
    /// A pool with exactly `workers` OS worker threads. `0` is valid and
    /// means every job runs inline on the thread that spawns it.
    pub fn with_workers(workers: usize) -> Pool {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            jobs_run: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads (the pool's lane count is `workers() + 1`:
    /// the caller participates).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs executed over the pool's lifetime.
    pub fn jobs_run(&self) -> u64 {
        // ordering: stats-only counter; no other memory depends on it.
        self.shared.jobs_run.load(Ordering::Relaxed)
    }

    /// Runs `f` with a [`Scope`] whose spawned jobs may borrow from the
    /// enclosing stack frame (`'env`). Every job has finished when `scope`
    /// returns; the first panic — from the body or any job — is resumed on
    /// the caller after the group drains.
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let group = Arc::new(Group::new());
        let scope = Scope {
            pool: self,
            group: Arc::clone(&group),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Participate: execute queued jobs (ours or a sibling scope's) on
        // this thread until our group drains. Only when the queue is empty
        // while jobs are still pending — i.e. workers have them in flight —
        // does the caller block on the condvar.
        loop {
            if scope.group.state.lock().remaining == 0 {
                break;
            }
            let task = {
                let mut st = self.shared.state.lock();
                st.queue.pop_front()
            };
            match task {
                Some(t) => t.execute(),
                None => {
                    let mut g = scope.group.state.lock();
                    while g.remaining > 0 {
                        g = scope.group.done.wait(g);
                    }
                    break;
                }
            }
        }
        let job_panic = group.state.lock().panic.take();
        match body {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Splits `range` into fixed-size `grain` chunks and runs `f` on each,
    /// in parallel when the pool has workers. Chunk boundaries depend only
    /// on `(range, grain)` — never on the worker count — which is the
    /// pool's half of the determinism contract (see the module docs).
    pub fn parallel_for<F>(&self, range: Range<usize>, grain: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let grain = grain.max(1);
        if range.is_empty() {
            return;
        }
        if self.workers == 0 || range.end - range.start <= grain {
            f(range);
            return;
        }
        self.scope(|s| {
            let f = &f;
            let mut lo = range.start;
            while lo < range.end {
                let hi = (lo + grain).min(range.end);
                s.spawn(move || f(lo..hi));
                lo = hi;
            }
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawn handle passed to [`Pool::scope`] closures; mirrors the
/// `std::thread::Scope` shape the workspace already uses.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope Pool,
    group: Arc<Group>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queues `f` for the pool's workers — or runs it inline when the pool
    /// has none, which keeps zero-worker dispatch allocation-free and
    /// strictly serial. Inline panics are captured into the group exactly
    /// like queued ones, so sibling jobs spawned after a panicking job
    /// still run and the payload is resumed by `scope` after the drain.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        // ordering: stats-only counter; no other memory depends on it.
        self.pool.shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        if self.pool.workers == 0 {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut g = self.group.state.lock();
                if g.panic.is_none() {
                    g.panic = Some(payload);
                }
            }
            return;
        }
        self.group.state.lock().remaining += 1;
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `Pool::scope` does not return until this group's
        // `remaining` count reaches zero — every spawned job has been
        // executed (by a worker or by the scope's own thread while
        // participating), including when the body or a sibling job panics.
        // The job therefore never outlives the 'scope/'env borrows it
        // captures, so erasing its lifetime to 'static for queue storage
        // is sound. This is the same argument as `thread::loom_impl`.
        let job: Job = unsafe { std::mem::transmute(job) };
        let task = Task {
            group: Arc::clone(&self.group),
            run: job,
        };
        {
            let mut st = self.pool.shared.state.lock();
            st.queue.push_back(task);
        }
        self.pool.shared.work.notify_one();
    }
}

/// A `*mut T` that can cross into pool jobs, for kernels whose parallel
/// units write *strided* (non-contiguous, therefore non-`chunks_mut`-able)
/// but provably disjoint regions of one output buffer — e.g. per-column
/// writes into a row-major matrix. Construction is safe; every dereference
/// of [`SendPtr::as_ptr`] remains `unsafe` and must argue disjointness.
#[derive(Clone, Copy, Debug)]
pub struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Wraps `ptr` for transfer into pool jobs.
    pub fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// The raw pointer back. Dereferencing is on the caller: jobs must
    /// write disjoint offsets and the buffer must outlive the scope.
    pub fn as_ptr(&self) -> *mut T {
        self.0
    }
}

// SAFETY: a `SendPtr` is a plain address. Sending it to a pool job is
// sound because `Pool::scope` joins every job before returning, so the
// pointee outlives all uses; aliasing discipline (disjoint writes) is
// asserted by each `unsafe` dereference site, not here.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: `&SendPtr` only exposes the address by value (`as_ptr`); see the
// `Send` justification above for the pointee discipline.
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(not(loom))]
mod runtime {
    use super::Pool;
    use crate::Arc;
    use std::cell::RefCell;

    // lint: allow(raw-sync) — `static` initialisers must be const and
    // loom's cells are not; this module is compiled out under `cfg(loom)`
    // (the free functions dispatch onto fresh zero-worker pools there).
    use std::sync::OnceLock;

    // lint: allow(raw-sync) — see the `use` above.
    static LANES: OnceLock<usize> = OnceLock::new();
    // lint: allow(raw-sync) — see the `use` above.
    static GLOBAL: OnceLock<Pool> = OnceLock::new();

    /// The configured lane count: `MRI_THREADS` when set to a positive
    /// integer, else `available_parallelism`. Read once per process.
    pub fn configured_lanes() -> usize {
        *LANES.get_or_init(|| {
            let detected = || {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            };
            match std::env::var("MRI_THREADS") {
                Ok(v) => v
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(detected),
                Err(_) => detected(),
            }
        })
    }

    /// The process-global pool: `lanes - 1` workers (the caller is the
    /// remaining lane), spawned on first use.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| Pool::with_workers(configured_lanes() - 1))
    }

    std::thread_local! {
        /// Per-thread pool override stack pushed by [`super::with_pool`] —
        /// how the invariance tests pin 1/2/4-lane dispatch without racing
        /// on the process environment.
        static OVERRIDE: RefCell<Vec<Arc<Pool>>> = const { RefCell::new(Vec::new()) };
    }

    pub fn current_override() -> Option<Arc<Pool>> {
        OVERRIDE.with(|o| o.borrow().last().cloned())
    }

    /// Jobs executed by the global pool so far; 0 while it is unspawned.
    pub fn global_jobs_run() -> u64 {
        GLOBAL.get().map(|p| p.jobs_run()).unwrap_or(0)
    }

    pub fn push_override(pool: Arc<Pool>) {
        OVERRIDE.with(|o| o.borrow_mut().push(pool));
    }

    pub fn pop_override() {
        OVERRIDE.with(|o| {
            o.borrow_mut().pop();
        });
    }
}

/// Runs `f` with every [`scope`] / [`parallel_for`] / [`lanes`] call *on
/// this thread* dispatching to `pool` instead of the global pool. Used by
/// the thread-count-invariance tests; nests (innermost wins) and restores
/// on unwind.
#[cfg(not(loom))]
pub fn with_pool<T>(pool: &Arc<Pool>, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            runtime::pop_override();
        }
    }
    runtime::push_override(Arc::clone(pool));
    let _restore = Restore;
    f()
}

/// Total execution lanes for parallel kernels: the active override pool's
/// lanes, else the global configuration (`MRI_THREADS` /
/// `available_parallelism`). Kernels stay serial when this is 1.
#[cfg(not(loom))]
pub fn lanes() -> usize {
    match runtime::current_override() {
        Some(p) => p.workers() + 1,
        None => runtime::configured_lanes(),
    }
}

/// Jobs executed by the process-global pool since start — the stats surface
/// the telemetry layer samples into its `pool.jobs` gauge (mri-sync cannot
/// depend on mri-telemetry, so the binding lives on the telemetry side).
#[cfg(not(loom))]
pub fn global_jobs_run() -> u64 {
    runtime::global_jobs_run()
}

/// Loom builds model explicit [`Pool`] instances only; the global free
/// functions run serial so kernel thresholds never parallelise inside a
/// foreign model.
#[cfg(loom)]
pub fn lanes() -> usize {
    1
}

/// [`Pool::scope`] on this thread's dispatch pool (override, else global).
#[cfg(not(loom))]
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    match runtime::current_override() {
        Some(p) => p.scope(f),
        None => runtime::global().scope(f),
    }
}

/// Loom-mode [`scope`]: a fresh zero-worker pool, i.e. inline execution on
/// the model thread.
#[cfg(loom)]
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    Pool::with_workers(0).scope(f)
}

/// [`Pool::parallel_for`] on this thread's dispatch pool (override, else
/// global).
#[cfg(not(loom))]
pub fn parallel_for<F>(range: Range<usize>, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    match runtime::current_override() {
        Some(p) => p.parallel_for(range, grain, f),
        None => runtime::global().parallel_for(range, grain, f),
    }
}

/// Loom-mode [`parallel_for`]: inline on the model thread.
#[cfg(loom)]
pub fn parallel_for<F>(range: Range<usize>, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    Pool::with_workers(0).parallel_for(range, grain, f);
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = Pool::with_workers(0);
        let mut acc = vec![0u32; 10];
        pool.scope(|s| {
            for (i, slot) in acc.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u32);
            }
        });
        assert_eq!(acc, (0..10).collect::<Vec<u32>>());
        assert_eq!(pool.jobs_run(), 10);
    }

    #[test]
    fn pooled_scope_joins_all_jobs() {
        let pool = Pool::with_workers(3);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                // ordering: counting only; the scope join publishes.
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // ordering: scope join is the synchronisation edge.
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn parallel_for_covers_range_once_per_index() {
        for workers in [0, 1, 3] {
            let pool = Pool::with_workers(workers);
            let cells: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            let cells_ref = &cells;
            pool.parallel_for(0..100, 7, move |r| {
                for i in r {
                    // ordering: counting only; the join publishes.
                    cells_ref[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            for (i, c) in cells.iter().enumerate() {
                // ordering: read after the parallel_for join.
                assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} workers {workers}");
            }
        }
    }

    #[test]
    fn job_panic_propagates_after_group_drains() {
        for workers in [0, 2] {
            let pool = Pool::with_workers(workers);
            let survivors = AtomicUsize::new(0);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    s.spawn(|| panic!("job boom"));
                    for _ in 0..8 {
                        // ordering: counting only; the scope join publishes.
                        s.spawn(|| {
                            survivors.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }));
            assert!(result.is_err(), "workers {workers}");
            // Sibling jobs are not cancelled by a panic.
            // ordering: read after the scope join inside catch_unwind.
            assert_eq!(survivors.load(Ordering::Relaxed), 8);
        }
    }

    #[test]
    fn with_pool_overrides_free_dispatch() {
        let two = Arc::new(Pool::with_workers(1));
        let before = lanes();
        with_pool(&two, || {
            assert_eq!(lanes(), 2);
            let total = AtomicUsize::new(0);
            parallel_for(0..40, 4, |r| {
                // ordering: counting only; the join publishes.
                total.fetch_add(r.len(), Ordering::Relaxed);
            });
            // ordering: read after the parallel_for join.
            assert_eq!(total.load(Ordering::Relaxed), 40);
        });
        assert_eq!(lanes(), before);
    }

    #[test]
    fn drop_joins_workers_after_draining_queue() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let pool = Pool::with_workers(2);
            pool.scope(|s| {
                for _ in 0..32 {
                    let hits = Arc::clone(&hits);
                    // ordering: counting only; drop/join publishes.
                    s.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        // ordering: read after the pool's drop joined its workers.
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }
}
