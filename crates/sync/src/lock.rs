//! Mutual-exclusion primitives with a `parking_lot`-style API: `lock()` /
//! `read()` / `write()` return guards directly and there is no poisoning.
//!
//! Normal builds re-export `parking_lot` types unchanged. Under
//! `cfg(loom)` the same API is provided by thin wrappers over
//! `loom::sync::{Mutex, RwLock}` (whose std-style `Result` guards are
//! unwrapped — a poisoned lock inside a loom model is already a failed
//! model).

#[cfg(not(loom))]
pub use parking_lot::{Mutex, RwLock};

#[cfg(loom)]
pub use loom_impl::{Mutex, RwLock};

#[cfg(loom)]
mod loom_impl {
    /// `parking_lot::Mutex`-shaped wrapper over the loom mutex.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> loom::sync::MutexGuard<'_, T> {
            self.0.lock().expect("loom mutex poisoned")
        }
    }

    /// `parking_lot::RwLock`-shaped wrapper over the loom rwlock.
    #[derive(Debug, Default)]
    pub struct RwLock<T>(loom::sync::RwLock<T>);

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock(loom::sync::RwLock::new(value))
        }

        pub fn read(&self) -> loom::sync::RwLockReadGuard<'_, T> {
            self.0.read().expect("loom rwlock poisoned")
        }

        pub fn write(&self) -> loom::sync::RwLockWriteGuard<'_, T> {
            self.0.write().expect("loom rwlock poisoned")
        }
    }
}
