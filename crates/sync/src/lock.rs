//! Mutual-exclusion primitives with a `parking_lot`-style API: `lock()` /
//! `read()` / `write()` return guards directly and there is no poisoning.
//!
//! Normal builds re-export `parking_lot` types unchanged. Under
//! `cfg(loom)` the same API is provided by thin wrappers over
//! `loom::sync::{Mutex, RwLock}` (whose std-style `Result` guards are
//! unwrapped — a poisoned lock inside a loom model is already a failed
//! model).
//!
//! [`Condvar`] is shimmed with a *consume-style* `wait`: the guard goes in
//! and the re-acquired guard comes out, which is the one shape expressible
//! over both parking_lot (`wait(&mut guard)`) and loom/std
//! (`wait(guard) -> LockResult<guard>`) without naming guard types at call
//! sites.

#[cfg(not(loom))]
pub use parking_lot::{Mutex, RwLock};

#[cfg(not(loom))]
pub use std_impl::Condvar;

#[cfg(loom)]
pub use loom_impl::{Condvar, Mutex, RwLock};

#[cfg(not(loom))]
mod std_impl {
    /// Condition variable over [`super::Mutex`]; see the module docs for
    /// the `wait` calling convention.
    #[derive(Debug, Default)]
    pub struct Condvar(parking_lot::Condvar);

    impl Condvar {
        pub const fn new() -> Self {
            Condvar(parking_lot::Condvar::new())
        }

        /// Atomically releases `guard`, blocks until notified, re-acquires
        /// the lock and returns the guard. Spurious wakeups are possible;
        /// callers loop on their predicate.
        pub fn wait<'a, T>(
            &self,
            mut guard: parking_lot::MutexGuard<'a, T>,
        ) -> parking_lot::MutexGuard<'a, T> {
            self.0.wait(&mut guard);
            guard
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(loom)]
mod loom_impl {
    /// `parking_lot::Mutex`-shaped wrapper over the loom mutex.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> loom::sync::MutexGuard<'_, T> {
            self.0.lock().expect("loom mutex poisoned")
        }
    }

    /// `parking_lot::RwLock`-shaped wrapper over the loom rwlock.
    #[derive(Debug, Default)]
    pub struct RwLock<T>(loom::sync::RwLock<T>);

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock(loom::sync::RwLock::new(value))
        }

        pub fn read(&self) -> loom::sync::RwLockReadGuard<'_, T> {
            self.0.read().expect("loom rwlock poisoned")
        }

        pub fn write(&self) -> loom::sync::RwLockWriteGuard<'_, T> {
            self.0.write().expect("loom rwlock poisoned")
        }
    }

    /// Consume-style condvar over the loom mutex; see the module docs.
    #[derive(Debug, Default)]
    pub struct Condvar(loom::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Condvar(loom::sync::Condvar::new())
        }

        /// Atomically releases `guard`, blocks until notified, re-acquires
        /// the lock and returns the guard. Spurious wakeups are possible;
        /// callers loop on their predicate.
        pub fn wait<'a, T>(
            &self,
            guard: loom::sync::MutexGuard<'a, T>,
        ) -> loom::sync::MutexGuard<'a, T> {
            self.0.wait(guard).expect("loom condvar poisoned")
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}
