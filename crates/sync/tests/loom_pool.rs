//! Loom model checks for the worker pool (`mri_sync::pool`).
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p mri-sync --test
//! loom_pool` (scripts/check.sh wires this up). Each model explores every
//! interleaving of a small pool within loom's preemption bound: job
//! submit/steal between the worker and the participating caller, the
//! decrement→notify window in the join-group handoff, queue drain on
//! shutdown, and panic propagation out of `parallel_for`. Models use
//! explicit [`Pool`] instances — the process-global pool is a `static` and
//! lives outside what loom can model.
#![cfg(loom)]

use mri_sync::atomic::{AtomicU64, Ordering};
use mri_sync::pool::Pool;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn pooled_scope_runs_every_job_exactly_once() {
    loom::model(|| {
        let pool = Pool::with_workers(1);
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..2 {
                // ordering: counting only; the scope join publishes.
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // Both jobs ran, whether stolen by the worker or executed by the
        // participating caller.
        // ordering: scope join is the synchronisation edge.
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn scope_join_has_no_lost_wakeup() {
    loom::model(|| {
        let pool = Pool::with_workers(1);
        let flag = AtomicU64::new(0);
        // A single job maximises the chance the caller reaches the condvar
        // wait while the worker is between decrementing `remaining` and
        // notifying; the model proves the wakeup still arrives.
        pool.scope(|s| {
            // ordering: the scope join publishes the store.
            s.spawn(|| {
                flag.store(1, Ordering::Relaxed);
            });
        });
        // ordering: read after the scope join.
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn shutdown_joins_worker_after_draining_queue() {
    loom::model(|| {
        let hits = mri_sync::Arc::new(AtomicU64::new(0));
        {
            let pool = Pool::with_workers(1);
            pool.scope(|s| {
                let hits = mri_sync::Arc::clone(&hits);
                // ordering: counting only; drop/join publishes.
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
            // `drop(pool)` races shutdown signalling against the worker's
            // wait loop; the model proves the worker always exits and no
            // queued job is stranded.
        }
        // ordering: read after the pool's drop joined its worker.
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn job_panic_propagates_out_of_parallel_for() {
    loom::model(|| {
        let pool = Pool::with_workers(1);
        let survivors = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..2, 1, |r| {
                if r.start == 0 {
                    panic!("model job boom");
                }
                // ordering: counting only; the join publishes.
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(
            result.is_err(),
            "the job panic must resurface on the caller"
        );
        // The sibling grain is never cancelled, no matter who ran it.
        // ordering: read after the parallel_for join inside catch_unwind.
        assert_eq!(survivors.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn zero_worker_pool_runs_inline_on_the_model_thread() {
    loom::model(|| {
        let pool = Pool::with_workers(0);
        let order = mri_sync::Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..3 {
                let order = &order;
                s.spawn(move || order.lock().push(i));
            }
        });
        assert_eq!(
            *order.lock(),
            vec![0, 1, 2],
            "inline dispatch preserves order"
        );
    });
}
