//! Loom model checks for the `mri-sync` primitives themselves.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p mri-sync --test
//! loom_primitives` (scripts/check.sh wires this up). Each test explores
//! every thread interleaving of a small model within loom's preemption
//! bound, so an assertion here holds for *all* schedules, not just the one
//! the host happened to produce.
#![cfg(loom)]

use mri_sync::atomic::{AtomicU64, Ordering};
use mri_sync::{Arc, Mutex, OnceLock};

#[test]
fn concurrent_fetch_add_never_loses_an_increment() {
    loom::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    // ordering: counting only; exactness is what the model
                    // verifies, no other memory is published.
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // ordering: joins above are the synchronisation edges.
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn once_lock_runs_the_initialiser_exactly_once() {
    loom::model(|| {
        let cell: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let runs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let runs = Arc::clone(&runs);
                loom::thread::spawn(move || {
                    *cell.get_or_init(|| {
                        // ordering: side-effect counter for the assertion
                        // below; the OnceLock provides the real ordering.
                        runs.fetch_add(1, Ordering::Relaxed);
                        42
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42, "every caller sees the one value");
        }
        // ordering: joins above are the synchronisation edges.
        assert_eq!(
            runs.load(Ordering::Relaxed),
            1,
            "racing get_or_init calls must run the initialiser exactly once"
        );
        assert_eq!(cell.get().copied(), Some(42));
    });
}

#[test]
fn mutex_read_modify_write_is_exclusive() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                loom::thread::spawn(move || {
                    let mut g = m.lock();
                    let stale = *g;
                    loom::thread::yield_now(); // widen the race window
                    *g = stale + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 2, "unlocked read-modify-write would lose one");
    });
}

#[test]
fn scope_joins_every_worker_before_returning() {
    loom::model(|| {
        let c = AtomicU64::new(0);
        mri_sync::thread::scope(|s| {
            for _ in 0..2 {
                // ordering: counting only; the scope join publishes.
                s.spawn(|| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // ordering: scope guarantees both workers finished.
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}
